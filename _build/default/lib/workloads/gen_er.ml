type er_spec = {
  entities : (string * string list) list;
  relationships : (string * string list * string list) list;
}

let er_spec rng ~n_entities ~n_relationships ~attrs_per =
  if n_entities < 1 then invalid_arg "Gen_er.er_spec: need entities";
  let entities =
    List.init n_entities (fun i ->
        ( Printf.sprintf "ent%d" i,
          List.init (max 1 attrs_per) (fun j -> Printf.sprintf "attr%d_%d" i j)
        ))
  in
  let entity_names = List.map fst entities in
  let relationships =
    List.init n_relationships (fun r ->
        let a = Rng.pick rng entity_names in
        let b =
          if n_entities = 1 then a
          else
            let rec other () =
              let c = Rng.pick rng entity_names in
              if c = a then other () else c
            in
            other ()
        in
        let participants = if a = b then [ a ] else [ a; b ] in
        let own_attrs =
          if Rng.bool rng 0.5 then [ Printf.sprintf "rattr%d" r ] else []
        in
        (Printf.sprintf "rel%d" r, participants, own_attrs))
  in
  { entities; relationships }

type layered_spec = {
  levels : string list list;
  definitions : (string * string list) list;
}

let layered_spec rng ~n_levels ~width ~fanin =
  if n_levels < 1 || width < 1 then invalid_arg "Gen_er.layered_spec";
  let name l i = Printf.sprintf "o%d_%d" l i in
  let level_sizes =
    List.init n_levels (fun l -> if l = 0 then width else 1 + Rng.int rng width)
  in
  let levels =
    List.mapi (fun l size -> List.init size (fun i -> name l i)) level_sizes
  in
  let definitions =
    List.concat
      (List.mapi
         (fun l size ->
           if l = 0 then []
           else
             let below = List.nth levels (l - 1) in
             List.init size (fun i ->
                 let k = 1 + Rng.int rng (max 1 fanin) in
                 (name l i, Rng.sample rng k below)))
         level_sizes)
  in
  { levels; definitions }
