lib/workloads/gen_hyper.mli: Hypergraph Hypergraphs Rng
