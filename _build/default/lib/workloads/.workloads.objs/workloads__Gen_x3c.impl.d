lib/workloads/gen_x3c.ml: List Rng Steiner X3c
