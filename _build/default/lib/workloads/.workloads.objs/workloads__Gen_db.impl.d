lib/workloads/gen_db.ml: Array Database Gen_hyper Graphs Hypergraphs List Printf Relalg Relation Rng
