lib/workloads/gen_graph.ml: Graphs Iset List Rng Ugraph
