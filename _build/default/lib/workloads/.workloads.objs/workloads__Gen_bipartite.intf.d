lib/workloads/gen_bipartite.mli: Bigraph Bipartite Graphs Iset Rng
