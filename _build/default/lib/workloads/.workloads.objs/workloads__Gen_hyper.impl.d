lib/workloads/gen_hyper.ml: Array Graphs Hypergraph Hypergraphs Iset List Rng
