lib/workloads/rng.mli:
