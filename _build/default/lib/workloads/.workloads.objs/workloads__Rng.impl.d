lib/workloads/rng.ml: Array List Random
