lib/workloads/gen_graph.mli: Graphs Rng Ugraph
