lib/workloads/gen_db.mli: Database Hypergraphs Relalg Rng
