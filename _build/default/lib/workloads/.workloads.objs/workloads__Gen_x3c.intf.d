lib/workloads/gen_x3c.mli: Rng Steiner X3c
