lib/workloads/gen_bipartite.ml: Bigraph Bipartite Correspond Gen_graph Gen_hyper Graphs Iset List Rng Traverse
