lib/workloads/gen_er.ml: List Printf Rng
