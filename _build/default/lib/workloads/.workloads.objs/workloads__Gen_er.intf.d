lib/workloads/gen_er.mli: Rng
