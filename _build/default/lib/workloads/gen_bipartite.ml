open Graphs
open Bipartite

let gnp rng ~nl ~nr ~p =
  let edges = ref [] in
  for i = 0 to nl - 1 do
    for j = 0 to nr - 1 do
      if Rng.bool rng p then edges := (i, j) :: !edges
    done
  done;
  Bigraph.of_edges ~nl ~nr !edges

let forest rng ~n =
  let tree = Gen_graph.random_tree rng ~n in
  match Bigraph.of_ugraph tree with
  | Some (g, _) -> g
  | None -> assert false (* trees are bipartite *)

let chordal_62 rng ~n_right ~max_size =
  Correspond.of_hypergraph (Gen_hyper.gamma_acyclic rng ~n_edges:n_right ~max_size)

let alpha_bipartite rng ~n_right ~max_size =
  Correspond.of_hypergraph (Gen_hyper.alpha_acyclic rng ~n_edges:n_right ~max_size)

let chordal_61_flower rng ~petals =
  Correspond.of_hypergraph (Gen_hyper.beta_flower rng ~petals)

let random_terminals rng g ~k =
  let u = Bigraph.ugraph g in
  let components = Traverse.components u in
  let largest =
    List.fold_left
      (fun best c ->
        if Iset.cardinal c > Iset.cardinal best then c else best)
      Iset.empty components
  in
  Iset.of_list (Rng.sample rng k (Iset.elements largest))
