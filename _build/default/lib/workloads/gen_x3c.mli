(** Random X3C instances for the Theorem 2 reduction experiments. *)

open Steiner

val planted : Rng.t -> q:int -> distractors:int -> X3c.instance
(** Solvable by construction: a hidden partition of the universe into
    [q] triples plus [distractors] random further triples, shuffled. *)

val unsolvable_pair : Rng.t -> q:int -> distractors:int -> X3c.instance
(** An instance built to be unsolvable: one universe element appears in
    no triple. *)
