open Graphs

let gnp rng ~n ~p =
  let b = Ugraph.Builder.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bool rng p then Ugraph.Builder.add_edge b u v
    done
  done;
  Ugraph.Builder.build b

let random_tree rng ~n =
  let b = Ugraph.Builder.create n in
  for v = 1 to n - 1 do
    Ugraph.Builder.add_edge b v (Rng.int rng v)
  done;
  Ugraph.Builder.build b

let random_chordal rng ~n ~max_clique =
  if n <= 0 then Ugraph.create (max n 0)
  else begin
    let g = ref (Ugraph.create n) in
    for v = 1 to n - 1 do
      (* Grow a clique greedily from a random seed among the processed
         prefix, then attach v to all of it. *)
      let seed = Rng.int rng v in
      let clique = ref (Iset.singleton seed) in
      let candidates =
        Rng.shuffle rng (Iset.elements (Ugraph.neighbors !g seed))
      in
      List.iter
        (fun u ->
          if u < v
             && Iset.cardinal !clique < max_clique - 1
             && Iset.for_all (fun w -> Ugraph.mem_edge !g u w) !clique
             && Rng.bool rng 0.7
          then clique := Iset.add u !clique)
        candidates;
      Iset.iter (fun u -> g := Ugraph.add_edge !g v u) !clique
    done;
    !g
  end

let random_connected rng ~n ~extra_edges =
  let g = ref (random_tree rng ~n) in
  if n >= 2 then
    for _ = 1 to extra_edges do
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v then g := Ugraph.add_edge !g u v
    done;
  !g

let cycle n =
  if n < 3 then invalid_arg "Gen_graph.cycle: need n >= 3";
  Ugraph.of_edges ~n
    ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))
