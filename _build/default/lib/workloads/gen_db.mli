(** Random populated databases over generated schemes, for the
    relational-engine experiments. *)

open Relalg

val over_hypergraph :
  Rng.t -> Hypergraphs.Hypergraph.t -> rows:int -> domain:int -> Database.t
(** One relation per hyperedge (named [r0], [r1], ...), attributes
    named [a<i>] after the node ids, [rows] random tuples per relation
    with values drawn from a [domain]-sized dictionary. *)

val acyclic : Rng.t -> n_relations:int -> rows:int -> Database.t
(** Random α-acyclic schema with data. *)

val chain : Rng.t -> length:int -> rows:int -> domain:int -> Database.t
(** The classic path schema r_i(a_i, a_(i+1)). *)
