(** Random entity–relationship schemes and layered hierarchies for the
    data-model experiments. (This module sits in a separate library
    from [Datamodel], so it returns raw building blocks the caller
    feeds to [Datamodel.Er.make] / [Datamodel.Layered.make].) *)

type er_spec = {
  entities : (string * string list) list;
  relationships : (string * string list * string list) list;
}

val er_spec :
  Rng.t -> n_entities:int -> n_relationships:int -> attrs_per:int -> er_spec
(** Entities [e0..], each with its own [attrs_per] attributes; each
    relationship joins two distinct random entities and may carry one
    attribute of its own. Guaranteed well-formed input for
    [Datamodel.Er.make]. *)

type layered_spec = {
  levels : string list list;
  definitions : (string * string list) list;
}

val layered_spec :
  Rng.t -> n_levels:int -> width:int -> fanin:int -> layered_spec
(** [n_levels >= 1] levels of up to [width] objects; each non-base
    object is defined by [1..fanin] objects of the level below.
    Guaranteed well-formed input for [Datamodel.Layered.make]. *)
