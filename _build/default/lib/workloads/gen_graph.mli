(** Random ordinary-graph workloads. *)

open Graphs

val gnp : Rng.t -> n:int -> p:float -> Ugraph.t
(** Erdős–Rényi. *)

val random_tree : Rng.t -> n:int -> Ugraph.t
(** Uniform-ish random tree: each node attaches to a random earlier
    node. *)

val random_chordal : Rng.t -> n:int -> max_clique:int -> Ugraph.t
(** Chordal by construction: every node is simplicial at insertion time
    (it attaches to a random clique of the prefix graph of size at most
    [max_clique - 1]). *)

val random_connected : Rng.t -> n:int -> extra_edges:int -> Ugraph.t
(** Random tree plus [extra_edges] random chords. *)

val cycle : int -> Ugraph.t
(** The n-cycle ([n >= 3]). *)
