(** Random bipartite-graph workloads, including generators landing in
    each chordality class of the paper (via the Theorem 1
    correspondence: the incidence graph of a D-acyclic hypergraph is
    exactly a bipartite graph whose H¹ is that hypergraph). *)

open Graphs
open Bipartite

val gnp : Rng.t -> nl:int -> nr:int -> p:float -> Bigraph.t

val forest : Rng.t -> n:int -> Bigraph.t
(** A random tree on [n] nodes, 2-coloured: a (4,1)-chordal graph. *)

val chordal_62 : Rng.t -> n_right:int -> max_size:int -> Bigraph.t
(** (6,2)-chordal: incidence graph of a random γ-acyclic hypergraph
    with [n_right] hyperedges. *)

val alpha_bipartite : Rng.t -> n_right:int -> max_size:int -> Bigraph.t
(** V₂-chordal V₂-conformal: incidence graph of a random α-acyclic
    hypergraph. *)

val chordal_61_flower : Rng.t -> petals:int -> Bigraph.t
(** (6,1)- but not (6,2)-chordal (the β-flower family). *)

val random_terminals : Rng.t -> Bigraph.t -> k:int -> Iset.t
(** [k] distinct nodes (underlying indices) from the largest connected
    component, so Steiner instances are feasible. Returns fewer when
    the component is smaller than [k]. *)
