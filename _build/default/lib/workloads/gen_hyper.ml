open Graphs
open Hypergraphs

let random rng ~n_nodes ~n_edges ~max_size =
  if n_nodes < 1 then invalid_arg "Gen_hyper.random: need nodes";
  let edge () =
    let size = 1 + Rng.int rng (max 1 max_size) in
    let picks = List.init size (fun _ -> Rng.int rng n_nodes) in
    Iset.of_list picks
  in
  Hypergraph.create ~n_nodes (List.init n_edges (fun _ -> edge ()))

(* Join-tree construction. [disjoint_separators] additionally consumes
   separator nodes from the parent's private pool so that any two edges
   intersect only when tree-adjacent, and separators never overlap. *)
let join_tree_family rng ~n_edges ~max_size ~max_sep ~disjoint_separators =
  if n_edges < 1 then invalid_arg "Gen_hyper: need at least one edge";
  let fresh = ref 0 in
  let next_fresh () =
    let v = !fresh in
    incr fresh;
    v
  in
  let new_privates () =
    let k = 1 + Rng.int rng (max 1 (max_size - 1)) in
    List.init k (fun _ -> next_fresh ())
  in
  let first = new_privates () in
  let edges = ref [ Iset.of_list first ] in
  let pools = ref [ first ] in
  for _ = 2 to n_edges do
    let arr = Array.of_list !pools in
    (* Pick a parent whose pool is still usable. *)
    let candidates =
      List.filteri (fun _ pool -> pool <> []) !pools
    in
    let parent_index =
      if candidates = [] then -1
      else begin
        let rec pick () =
          let i = Rng.int rng (Array.length arr) in
          if arr.(i) = [] then pick () else i
        in
        pick ()
      end
    in
    let privates = new_privates () in
    if parent_index < 0 then begin
      (* Every pool exhausted: start a new tree in the forest. *)
      edges := Iset.of_list privates :: !edges;
      pools := privates :: !pools
    end
    else begin
      let pool = arr.(parent_index) in
      let sep_size = 1 + Rng.int rng (max 1 (min max_sep (List.length pool))) in
      let sep_size = min sep_size (List.length pool) in
      let separator = Rng.sample rng sep_size pool in
      if disjoint_separators then begin
        let remaining =
          List.filter (fun v -> not (List.mem v separator)) pool
        in
        pools :=
          List.mapi (fun i p -> if i = parent_index then remaining else p)
            !pools
      end;
      let e = Iset.of_list (separator @ privates) in
      edges := !edges @ [ e ];
      pools := !pools @ [ privates ]
    end
  done;
  Hypergraph.create ~n_nodes:!fresh !edges

let alpha_acyclic rng ~n_edges ~max_size =
  join_tree_family rng ~n_edges ~max_size ~max_sep:max_size
    ~disjoint_separators:false

let gamma_acyclic rng ~n_edges ~max_size =
  join_tree_family rng ~n_edges ~max_size ~max_sep:(max 2 (max_size - 1))
    ~disjoint_separators:true

let berge_acyclic rng ~n_edges ~max_size =
  join_tree_family rng ~n_edges ~max_size ~max_sep:1
    ~disjoint_separators:false

let beta_flower rng ~petals =
  if petals < 2 then invalid_arg "Gen_hyper.beta_flower: need >= 2 petals";
  ignore rng;
  let hub = 0 in
  let petal i = Iset.of_list [ hub; i ] in
  let cover = Iset.of_list (hub :: List.init petals (fun i -> i + 1)) in
  Hypergraph.create ~n_nodes:(petals + 1)
    (List.init petals (fun i -> petal (i + 1)) @ [ cover ])
