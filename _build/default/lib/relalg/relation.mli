(** In-memory relations: a named attribute list and a set of tuples.

    This is the minimal relational substrate behind the paper's
    motivation (universal-relation interfaces, semijoin programs on
    acyclic schemas). Values are strings; a tuple assigns one value per
    attribute, positionally. *)

type t

val make : attrs:string list -> string list list -> t
(** Raises [Invalid_argument] on duplicate attributes or arity
    mismatches. Duplicate tuples collapse. *)

val attrs : t -> string list
(** In column order. *)

val attr_set : t -> string list
(** Sorted. *)

val tuples : t -> string list list
(** In column order of [attrs], sorted and duplicate-free. *)

val cardinality : t -> int

val arity : t -> int

val mem_attr : t -> string -> bool

val value : t -> string list -> string -> string
(** [value r tuple attr]: the attr's value in a tuple of [r] (tuple
    given in [r]'s column order). *)

val equal : t -> t -> bool
(** Same attribute set and same tuple set (column order ignored). *)

val empty_like : t -> t

val pp : Format.formatter -> t -> unit
