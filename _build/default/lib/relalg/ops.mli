(** Relational algebra operators: projection, selection, natural join,
    semijoin. *)

val project : Relation.t -> string list -> Relation.t
(** Keep the listed attributes (which must exist); duplicates in the
    result collapse. *)

val select_eq : Relation.t -> attr:string -> value:string -> Relation.t

val natural_join : Relation.t -> Relation.t -> Relation.t
(** Hash join on the common attributes; a cartesian product when there
    are none. Column order: left's columns then right's extras. *)

val semijoin : Relation.t -> Relation.t -> Relation.t
(** [semijoin r s] keeps the tuples of [r] that join with some tuple of
    [s]. *)

val join_all : Relation.t list -> Relation.t option
(** Left fold of natural joins; [None] on the empty list. *)
