(** Yannakakis' algorithm: evaluate a project-join query over an
    α-acyclic database in polynomial time using a full semijoin reducer
    along a join tree — the efficiency payoff of acyclicity that
    motivates the paper's Section 1.

    [evaluate] falls back to the naive join-everything plan when the
    scheme is cyclic. *)

open Hypergraphs

type plan =
  | Acyclic of Join_tree.t  (** join tree over the relations *)
  | Naive_fallback

val plan : Database.t -> plan

val full_reducer : Database.t -> Join_tree.t -> Database.t
(** Upward then downward semijoin passes; the result is globally
    consistent when the tree is a coherent join tree. *)

val evaluate : Database.t -> output:string list -> Relation.t
(** Project-join: π_output(⋈ all relations). Raises [Invalid_argument]
    when an output attribute does not occur in the database. *)

val evaluate_naive : Database.t -> output:string list -> Relation.t
(** Ground truth: fold the natural joins in declaration order, then
    project. Exponential intermediate results possible. *)
