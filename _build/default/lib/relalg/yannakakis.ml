open Hypergraphs

type plan = Acyclic of Join_tree.t | Naive_fallback

let plan db =
  match Gyo.join_tree (Database.scheme_hypergraph db) with
  | Some jt -> Acyclic jt
  | None -> Naive_fallback

let rel_at db i = snd (List.nth (Database.relations db) i)
let name_at db i = fst (List.nth (Database.relations db) i)

let full_reducer db jt =
  let pre = Join_tree.preorder jt in
  let upward =
    (* children before parents: reverse preorder; semijoin parent by
       child. *)
    List.rev pre
    |> List.filter_map (fun i ->
           let p = jt.Join_tree.parent.(i) in
           if p >= 0 then Some (name_at db p, name_at db i) else None)
  in
  let downward =
    pre
    |> List.filter_map (fun i ->
           let p = jt.Join_tree.parent.(i) in
           if p >= 0 then Some (name_at db i, name_at db p) else None)
  in
  Database.semijoin_reduce db ~order:(upward @ downward)

let check_output db output =
  let known = Database.attributes db in
  List.iter
    (fun a ->
      if not (List.mem a known) then
        invalid_arg ("Yannakakis: unknown output attribute " ^ a))
    output

let evaluate_naive db ~output =
  check_output db output;
  match Ops.join_all (List.map snd (Database.relations db)) with
  | None -> Relation.make ~attrs:output []
  | Some joined -> Ops.project joined output

let evaluate db ~output =
  check_output db output;
  match plan db with
  | Naive_fallback -> evaluate_naive db ~output
  | Acyclic jt ->
    let reduced = full_reducer db jt in
    let rec eval_subtree i =
      let rel = rel_at reduced i in
      let joined =
        List.fold_left
          (fun acc child -> Ops.natural_join acc (eval_subtree child))
          rel (Join_tree.children jt i)
      in
      let p = jt.Join_tree.parent.(i) in
      let keep_above =
        if p < 0 then [] else Relation.attrs (rel_at reduced p)
      in
      let keep =
        List.filter
          (fun a -> List.mem a output || List.mem a keep_above)
          (Relation.attrs joined)
      in
      Ops.project joined keep
    in
    let root_results = List.map eval_subtree (Join_tree.roots jt) in
    (match Ops.join_all root_results with
    | None -> Relation.make ~attrs:output []
    | Some r -> Ops.project r output)
