type t = { columns : string list; rows : string list list }

let make ~attrs rows =
  let sorted = List.sort_uniq compare attrs in
  if List.length sorted <> List.length attrs then
    invalid_arg "Relation.make: duplicate attribute";
  List.iter
    (fun row ->
      if List.length row <> List.length attrs then
        invalid_arg "Relation.make: arity mismatch")
    rows;
  { columns = attrs; rows = List.sort_uniq compare rows }

let attrs r = r.columns
let attr_set r = List.sort compare r.columns
let tuples r = r.rows
let cardinality r = List.length r.rows
let arity r = List.length r.columns
let mem_attr r a = List.mem a r.columns

let value r row attr =
  let rec go cols vals =
    match (cols, vals) with
    | c :: _, v :: _ when c = attr -> v
    | _ :: cols, _ :: vals -> go cols vals
    | _ -> invalid_arg ("Relation.value: no attribute " ^ attr)
  in
  go r.columns row

let canonical r =
  (* Rows as sorted (attr, value) association lists, sorted. *)
  let keyed row = List.sort compare (List.combine r.columns row) in
  List.sort compare (List.map keyed r.rows)

let equal a b = attr_set a = attr_set b && canonical a = canonical b

let empty_like r = { r with rows = [] }

let pp ppf r =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " r.columns);
  List.iter (fun row -> Format.fprintf ppf "%s@," (String.concat " | " row)) r.rows;
  Format.fprintf ppf "(%d tuples)@]" (cardinality r)
