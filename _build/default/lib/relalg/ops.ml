let project r keep =
  List.iter
    (fun a ->
      if not (Relation.mem_attr r a) then
        invalid_arg ("Ops.project: unknown attribute " ^ a))
    keep;
  let rows =
    List.map (fun row -> List.map (Relation.value r row) keep) (Relation.tuples r)
  in
  Relation.make ~attrs:keep rows

let select_eq r ~attr ~value =
  let rows =
    List.filter (fun row -> Relation.value r row attr = value) (Relation.tuples r)
  in
  Relation.make ~attrs:(Relation.attrs r) rows

let key_of common r row = List.map (Relation.value r row) common

let natural_join a b =
  let common =
    List.filter (fun x -> Relation.mem_attr b x) (Relation.attrs a)
  in
  let b_extras =
    List.filter (fun x -> not (Relation.mem_attr a x)) (Relation.attrs b)
  in
  let index = Hashtbl.create 64 in
  List.iter
    (fun row ->
      let k = key_of common b row in
      let existing = try Hashtbl.find index k with Not_found -> [] in
      Hashtbl.replace index k (row :: existing))
    (Relation.tuples b);
  let out = ref [] in
  List.iter
    (fun row ->
      let k = key_of common a row in
      match Hashtbl.find_opt index k with
      | None -> ()
      | Some matches ->
        List.iter
          (fun brow ->
            let extras = List.map (Relation.value b brow) b_extras in
            out := (row @ extras) :: !out)
          matches)
    (Relation.tuples a);
  Relation.make ~attrs:(Relation.attrs a @ b_extras) !out

let semijoin r s =
  let common =
    List.filter (fun x -> Relation.mem_attr s x) (Relation.attrs r)
  in
  let keys = Hashtbl.create 64 in
  List.iter
    (fun row -> Hashtbl.replace keys (key_of common s row) ())
    (Relation.tuples s);
  let rows =
    List.filter
      (fun row -> Hashtbl.mem keys (key_of common r row))
      (Relation.tuples r)
  in
  Relation.make ~attrs:(Relation.attrs r) rows

let join_all = function
  | [] -> None
  | r :: rest -> Some (List.fold_left natural_join r rest)
