lib/relalg/database.mli: Format Hypergraph Hypergraphs Relation
