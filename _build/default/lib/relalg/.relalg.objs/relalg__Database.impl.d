lib/relalg/database.ml: Format Graphs Hypergraph Hypergraphs Iset List Ops Relation String
