lib/relalg/relation.ml: Format List String
