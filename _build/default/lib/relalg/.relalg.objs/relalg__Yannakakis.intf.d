lib/relalg/yannakakis.mli: Database Hypergraphs Join_tree Relation
