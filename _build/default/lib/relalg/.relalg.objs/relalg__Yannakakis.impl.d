lib/relalg/yannakakis.ml: Array Database Gyo Hypergraphs Join_tree List Ops Relation
