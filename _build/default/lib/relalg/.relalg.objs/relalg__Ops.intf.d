lib/relalg/ops.mli: Relation
