lib/relalg/ops.ml: Hashtbl List Relation
