(** A database: named relations plus the scheme-level view as a
    hypergraph over its attributes. *)

open Hypergraphs

type t

val make : (string * Relation.t) list -> t
(** Raises [Invalid_argument] on duplicate relation names. *)

val relation : t -> string -> Relation.t
(** Raises [Not_found]. *)

val names : t -> string list

val relations : t -> (string * Relation.t) list

val attributes : t -> string list
(** Sorted union of all relations' attributes. *)

val attribute_index : t -> string -> int
(** Position in {!attributes}; raises [Not_found]. *)

val scheme_hypergraph : t -> Hypergraph.t
(** Nodes are attributes (in {!attributes} order), one hyperedge per
    relation (in {!names} order). *)

val semijoin_reduce : t -> order:(string * string) list -> t
(** Apply a semijoin program: for each pair [(r, s)] in order, replace
    [r] by [r ⋉ s]. *)

val pp : Format.formatter -> t -> unit
