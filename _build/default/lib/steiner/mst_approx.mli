(** The classical 2-approximation for unweighted Steiner trees
    (Kou–Markowsky–Berman style): build the metric closure of the
    terminals, take its minimum spanning tree, expand each MST edge
    into a shortest path, and prune.

    This is the structure-oblivious baseline: on (6,2)-chordal inputs
    it can return strictly more nodes than Algorithm 2, which is one of
    the benchmark harness's headline comparisons. *)

open Graphs

val solve : Ugraph.t -> terminals:Iset.t -> Tree.t option
(** [None] when the terminals do not share a component. *)
