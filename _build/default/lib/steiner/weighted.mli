(** Node-weighted minimal connections.

    The paper minimises the {e number} of auxiliary concepts; a natural
    refinement weights each concept by a disclosure cost (how much a
    casual user must understand to accept an interpretation) and
    minimises total weight. This module adapts the Dreyfus–Wagner
    dynamic program to node weights: [dp S v] is the cheapest total
    node weight of a tree spanning [S ∪ {v}], with merge transitions
    de-duplicating the shared root and grow transitions paying for path
    interiors via a node-weighted Dijkstra.

    With all weights 1 the optimum coincides with the unweighted
    solver's node count (property-tested). *)

open Graphs

val solve :
  ?within:Iset.t -> Ugraph.t -> weight:(int -> int) -> terminals:Iset.t ->
  (Tree.t * int) option
(** A minimum-total-weight tree over the terminals and its weight;
    [None] when disconnected. Weights must be nonnegative (raises
    [Invalid_argument] otherwise). Terminal count capped at
    {!Dreyfus_wagner.max_terminals}. *)

val brute : Ugraph.t -> weight:(int -> int) -> terminals:Iset.t -> int option
(** Exhaustive oracle: minimum weight over all connected covers.
    Exponential; tiny graphs only. *)
