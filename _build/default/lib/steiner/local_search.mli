(** A randomized local-search Steiner heuristic: the third baseline in
    the quality benchmarks (exact DP, MST approximation, local search).

    Starts from the MST approximation and repeatedly tries two moves:
    drop a non-terminal node whose removal keeps the terminals
    connected (shrinking to the terminal component), or swap a random
    non-terminal out and reconnect through shortest paths. Improvements
    are always accepted; the search is deterministic given the seed. *)

open Graphs

val solve :
  ?iterations:int -> seed:int -> Ugraph.t -> terminals:Iset.t -> Tree.t option
(** [None] when the terminals are disconnected; defaults to 200
    iterations. The result is always a valid tree over the terminals,
    never larger than the MST-approximation start. *)
