(** Result trees returned by every Steiner solver in this library. *)

open Graphs

type t = {
  nodes : Iset.t;  (** nodes of the tree (underlying graph indices) *)
  edges : (int * int) list;  (** the [|nodes| - 1] tree edges *)
}

val empty : t

val node_count : t -> int

val count_in : t -> Iset.t -> int
(** How many tree nodes fall in the given set (used to count V₂ nodes
    for pseudo-Steiner objectives). *)

val verify : Ugraph.t -> terminals:Iset.t -> t -> bool
(** The edges form a tree of [g] over exactly [t.nodes], and the tree
    contains every terminal. *)

val of_node_set : Ugraph.t -> Iset.t -> t option
(** Spanning tree of the induced subgraph, when connected. *)

val spanning_with_leaves_in : Ugraph.t -> nodes:Iset.t -> terminals:Iset.t -> t option
(** A spanning tree of the induced subgraph on [nodes] in which every
    leaf is a terminal, if one exists. Used to rank alternative query
    interpretations: such a tree certifies that every auxiliary node
    genuinely routes the connection instead of dangling. Exponential in
    the induced edge count; meant for small connections. *)

val prune_leaves : Ugraph.t -> keep:Iset.t -> t -> t
(** Repeatedly remove degree-1 tree nodes not in [keep]. Never increases
    any node count; useful to tidy covers into inclusion-minimal
    trees. *)

val pp : Format.formatter -> t -> unit
