lib/steiner/mst_approx.ml: Array Graphs Iset List Traverse Tree
