lib/steiner/mst_approx.mli: Graphs Iset Tree Ugraph
