lib/steiner/cover.ml: Array Graphs Iset List Traverse Ugraph
