lib/steiner/tree.ml: Format Graphs Iset List Spanning Ugraph
