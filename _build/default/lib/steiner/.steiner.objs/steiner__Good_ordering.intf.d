lib/steiner/good_ordering.mli: Graphs Iset Ugraph
