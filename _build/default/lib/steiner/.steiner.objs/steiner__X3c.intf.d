lib/steiner/x3c.mli: Format
