lib/steiner/forest_steiner.mli: Graphs Iset Tree Ugraph
