lib/steiner/brute.ml: Array Bigraph Bipartite Graphs Iset List Traverse Tree Ugraph
