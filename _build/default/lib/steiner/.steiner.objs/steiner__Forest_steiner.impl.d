lib/steiner/forest_steiner.ml: Cycles Graphs Iset Traverse Tree Ugraph
