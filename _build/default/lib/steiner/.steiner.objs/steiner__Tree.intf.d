lib/steiner/tree.mli: Format Graphs Iset Ugraph
