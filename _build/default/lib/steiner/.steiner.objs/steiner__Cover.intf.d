lib/steiner/cover.mli: Graphs Iset Ugraph
