lib/steiner/dreyfus_wagner.ml: Array Graphs Iset List Option Spanning Traverse Tree Ugraph
