lib/steiner/weighted.ml: Array Dreyfus_wagner Graphs Iset List Spanning Traverse Tree Ugraph
