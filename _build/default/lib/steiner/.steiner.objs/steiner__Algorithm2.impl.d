lib/steiner/algorithm2.ml: Bigraph Bipartite Cover Graphs Iset Logs Traverse Tree
