lib/steiner/reductions.ml: Array Bigraph Bipartite Brute Dreyfus_wagner Graphs Iset List Side_properties Tree Ugraph X3c
