lib/steiner/good_ordering.ml: Cover Dreyfus_wagner Graphs Iset Traverse Ugraph
