lib/steiner/algorithm1.ml: Array Bigraph Bipartite Cover Graphs Gyo Hypergraph Hypergraphs Iset Join_tree List Logs String Traverse Tree Ugraph
