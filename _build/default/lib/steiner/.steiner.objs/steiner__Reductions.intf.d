lib/steiner/reductions.mli: Bigraph Bipartite Graphs Iset Ugraph X3c
