lib/steiner/dreyfus_wagner.mli: Graphs Iset Tree Ugraph
