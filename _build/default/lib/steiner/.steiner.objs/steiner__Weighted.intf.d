lib/steiner/weighted.mli: Graphs Iset Tree Ugraph
