lib/steiner/local_search.ml: Graphs Iset List Mst_approx Random Traverse Tree Ugraph
