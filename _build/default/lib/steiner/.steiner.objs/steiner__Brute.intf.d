lib/steiner/brute.mli: Bigraph Bipartite Graphs Iset Tree Ugraph
