lib/steiner/algorithm2.mli: Bigraph Bipartite Graphs Iset Tree Ugraph
