lib/steiner/kbest.ml: Dreyfus_wagner Graphs List Tree Ugraph
