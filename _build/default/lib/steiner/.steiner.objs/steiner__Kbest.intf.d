lib/steiner/kbest.mli: Graphs Iset Tree Ugraph
