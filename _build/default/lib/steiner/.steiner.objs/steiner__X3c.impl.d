lib/steiner/x3c.ml: Array Format List
