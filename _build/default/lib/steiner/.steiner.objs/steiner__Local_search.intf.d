lib/steiner/local_search.mli: Graphs Iset Tree Ugraph
