lib/steiner/algorithm1.mli: Bigraph Bipartite Graphs Iset Stdlib Tree
