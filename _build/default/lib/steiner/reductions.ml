open Graphs
open Bipartite

type theorem2_instance = {
  graph : Bigraph.t;
  terminals : Iset.t;
  budget : int;
}

let theorem2 inst =
  let k = Array.length inst.X3c.triples in
  let n_elements = X3c.universe_size inst in
  (* Left: triples. Right: index 0 is the universal node u2, element x
     sits at right index 1 + x. *)
  let edges = ref [] in
  for i = 0 to k - 1 do
    edges := (i, 0) :: !edges;
    let a, b, c = inst.X3c.triples.(i) in
    edges := (i, 1 + a) :: (i, 1 + b) :: (i, 1 + c) :: !edges
  done;
  let graph = Bigraph.of_edges ~nl:k ~nr:(1 + n_elements) !edges in
  {
    graph;
    terminals = Bigraph.right_nodes graph;
    budget = (4 * inst.X3c.q) + 1;
  }

let theorem2_gadget_ok t =
  Side_properties.alpha_side t.graph Bigraph.V2

let steiner_within_budget t =
  match
    Dreyfus_wagner.optimum_nodes (Bigraph.ugraph t.graph)
      ~terminals:t.terminals
  with
  | None -> false
  | Some opt -> opt <= t.budget

let fig9 g =
  let arcs = Ugraph.edges g in
  let edges =
    List.concat (List.mapi (fun j (u, v) -> [ (u, j); (v, j) ]) arcs)
  in
  Bigraph.of_edges ~nl:(Ugraph.n g) ~nr:(List.length arcs) edges

let fig9_is_v2_chordal g = Side_properties.chordal (fig9 g) Bigraph.V2

let cspc_optimum g ~terminals =
  match Dreyfus_wagner.solve g ~terminals with
  | None -> None
  | Some t -> Some (List.length t.Tree.edges)

let fig9_equivalence_holds g ~terminals =
  let reduced = fig9 g in
  (* Terminals live on V1 of the reduced graph, with identical ids. *)
  match (cspc_optimum g ~terminals, Brute.v2_minimum reduced ~p:terminals) with
  | None, None -> true
  | Some a, Some (_, b) -> a = b
  | Some _, None | None, Some _ -> false
