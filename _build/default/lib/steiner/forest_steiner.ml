open Graphs

let solve g ~terminals =
  if Iset.is_empty terminals then Some Tree.empty
  else
    match Traverse.component_containing g terminals with
    | None -> None
    | Some comp ->
      if not (Cycles.is_acyclic ~within:comp g) then None
      else begin
        (* In a tree, the minimal connection is the union of pairwise
           paths; equivalently, prune non-terminal leaves repeatedly. *)
        let rec prune nodes =
          let removable =
            Iset.filter
              (fun v ->
                (not (Iset.mem v terminals))
                && Iset.cardinal (Ugraph.adj_within g ~within:nodes v) <= 1)
              nodes
          in
          if Iset.is_empty removable then nodes
          else prune (Iset.diff nodes removable)
        in
        Tree.of_node_set g (prune comp)
      end
