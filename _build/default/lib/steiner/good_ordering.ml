open Graphs

let eliminate g ~order ~p =
  match Traverse.component_containing g p with
  | None -> None
  | Some comp ->
    let order = order @ Iset.elements (Iset.diff comp (Iset.of_list order)) in
    Some (Cover.eliminate_redundant ~order g ~within:comp ~p)

let is_good_for g ~order ~p =
  match eliminate g ~order ~p with
  | None -> true
  | Some survivors -> (
    match Dreyfus_wagner.optimum_nodes g ~terminals:p with
    | None -> true
    | Some opt -> Iset.cardinal survivors = opt)

let find_bad_set ?(max_terminals = 4) g ~order =
  let n = Ugraph.n g in
  let result = ref None in
  let rec search chosen smallest size =
    if !result <> None then ()
    else begin
      if size >= 2 && not (is_good_for g ~order ~p:chosen) then
        result := Some chosen;
      if !result = None && size < max_terminals then
        for v = smallest + 1 to n - 1 do
          if !result = None then search (Iset.add v chosen) v (size + 1)
        done
    end
  in
  search Iset.empty (-1) 0;
  !result

let is_good ?max_terminals g ~order = find_bad_set ?max_terminals g ~order = None
