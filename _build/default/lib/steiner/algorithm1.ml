open Graphs
open Bipartite
open Hypergraphs

let log_src =
  Logs.Src.create "minconn.algorithm1" ~doc:"Algorithm 1 (Theorem 3/4)"

module Log = (val Logs.src_log log_src : Logs.LOG)

type error = Disconnected_terminals | Not_alpha_acyclic

type result = {
  tree : Tree.t;
  v2_count : int;
  elimination_order : int list;
}

let solve g ~p =
  let u = Bigraph.ugraph g in
  match Traverse.component_containing u p with
  | None -> Error Disconnected_terminals
  | Some comp ->
    let right_in_comp =
      Iset.elements (Iset.inter comp (Bigraph.right_nodes g))
    in
    (* H¹ of the component: one hyperedge per right node, over the left
       universe. Right nodes in the component always have at least one
       neighbor (they would otherwise be isolated and the component
       would be a singleton); a singleton component is the trivial
       case below. *)
    if Iset.cardinal comp <= 1 then
      Ok
        {
          tree = { Tree.nodes = comp; edges = [] };
          v2_count = Iset.cardinal (Iset.inter comp (Bigraph.right_nodes g));
          elimination_order = [];
        }
    else begin
      let family =
        List.map (fun v -> Ugraph.neighbors u v) right_in_comp
      in
      let h = Hypergraph.create ~n_nodes:(Bigraph.nl g) family in
      match Gyo.join_tree h with
      | None -> Error Not_alpha_acyclic
      | Some jt ->
        let rip = Join_tree.preorder jt in
        let right_arr = Array.of_list right_in_comp in
        (* Lemma 1's W is the reverse of the running-intersection
           ordering. *)
        let w_order = List.rev_map (fun i -> right_arr.(i)) rip in
        Log.debug (fun m ->
            m "Lemma 1 ordering W = [%s]"
              (String.concat "; " (List.map string_of_int w_order)));
        let step current v =
          if not (Iset.mem v current) then current
          else begin
            let doomed =
              Iset.add v (Ugraph.private_neighbors u ~within:current v)
            in
            if not (Iset.is_empty (Iset.inter doomed p)) then current
            else
              let candidate = Iset.diff current doomed in
              if Cover.is_cover u ~p candidate then begin
                Log.debug (fun m ->
                    m "eliminating right node %d with Adj* %a" v Iset.pp
                      (Iset.remove v doomed));
                candidate
              end
              else current
          end
        in
        (* A single pass can leave a right node that was only blocked
           by structure deleted later in the same pass (covers must be
           connected as a whole); re-scan in the same W order until a
           fixpoint so the result is V2-nonredundant as Theorem 3's
           proof requires. *)
        let rec fixpoint current =
          let next = List.fold_left step current w_order in
          if Iset.equal next current then current else fixpoint next
        in
        let survivors = fixpoint comp in
        (match Tree.of_node_set u survivors with
        | None -> assert false (* elimination preserves connectivity *)
        | Some tree ->
          Ok
            {
              tree;
              v2_count = Tree.count_in tree (Bigraph.right_nodes g);
              elimination_order = w_order;
            })
    end

let solve_wrt_v1 g ~p =
  let flipped = Bigraph.flip g in
  let to_flipped v =
    match Bigraph.node_of_index g v with
    | Bigraph.L i -> Bigraph.index flipped (Bigraph.R i)
    | Bigraph.R j -> Bigraph.index flipped (Bigraph.L j)
  in
  let to_original v =
    match Bigraph.node_of_index flipped v with
    | Bigraph.L j -> Bigraph.index g (Bigraph.R j)
    | Bigraph.R i -> Bigraph.index g (Bigraph.L i)
  in
  match solve flipped ~p:(Iset.map to_flipped p) with
  | Error e -> Error e
  | Ok r ->
    let nodes = Iset.map to_original r.tree.Tree.nodes in
    let edges =
      List.map
        (fun (a, b) ->
          let a = to_original a and b = to_original b in
          (min a b, max a b))
        r.tree.Tree.edges
    in
    Ok
      {
        tree = { Tree.nodes; edges };
        v2_count = r.v2_count;
        elimination_order = List.map to_original r.elimination_order;
      }
