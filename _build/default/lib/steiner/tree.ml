open Graphs

type t = { nodes : Iset.t; edges : (int * int) list }

let empty = { nodes = Iset.empty; edges = [] }

let node_count t = Iset.cardinal t.nodes

let count_in t s = Iset.cardinal (Iset.inter t.nodes s)

let verify g ~terminals t =
  Iset.subset terminals t.nodes && Spanning.tree_check g ~over:t.nodes t.edges

let of_node_set g nodes =
  match Spanning.spanning_tree ~within:nodes g with
  | Some edges -> Some { nodes; edges }
  | None -> None

let spanning_with_leaves_in g ~nodes ~terminals =
  let all_edges =
    List.filter
      (fun (u, v) -> Iset.mem u nodes && Iset.mem v nodes)
      (Ugraph.edges g)
  in
  let need = max 0 (Iset.cardinal nodes - 1) in
  let leaves_ok edges =
    let degree v =
      List.length (List.filter (fun (a, b) -> a = v || b = v) edges)
    in
    Iset.for_all (fun v -> Iset.mem v terminals || degree v >= 2) nodes
  in
  if Iset.cardinal nodes <= 1 then
    if Iset.subset nodes terminals then Some { nodes; edges = [] } else None
  else begin
    (* Choose [need] edges out of the induced edges; prune by count. *)
    let result = ref None in
    let rec choose chosen count = function
      | _ when !result <> None -> ()
      | [] ->
        if count = need && Spanning.tree_check g ~over:nodes chosen
           && leaves_ok chosen
        then result := Some { nodes; edges = chosen }
      | e :: rest ->
        if count + 1 + List.length rest >= need then begin
          if count < need then choose (e :: chosen) (count + 1) rest;
          if !result = None && count + List.length rest >= need then
            choose chosen count rest
        end
    in
    choose [] 0 all_edges;
    !result
  end

let prune_leaves _g ~keep t =
  let degree nodes v =
    List.length
      (List.filter
         (fun (a, b) -> (a = v || b = v) && Iset.mem a nodes && Iset.mem b nodes)
         t.edges)
  in
  let rec go nodes =
    let removable =
      Iset.filter
        (fun v -> (not (Iset.mem v keep)) && degree nodes v <= 1)
        nodes
    in
    if Iset.is_empty removable then nodes
    else go (Iset.diff nodes removable)
  in
  let nodes = go t.nodes in
  let edges =
    List.filter (fun (a, b) -> Iset.mem a nodes && Iset.mem b nodes) t.edges
  in
  { nodes; edges }

let pp ppf t =
  Format.fprintf ppf "@[<v>tree over %a" Iset.pp t.nodes;
  List.iter (fun (u, v) -> Format.fprintf ppf "@,  %d -- %d" u v) t.edges;
  Format.fprintf ppf "@]"
