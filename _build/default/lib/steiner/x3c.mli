(** Exact Cover by 3-Sets (X3C), the NP-complete problem behind the
    paper's Theorem 2 reduction.

    An instance is a universe of [3q] elements and a collection of
    3-element subsets; the question is whether some subcollection
    covers every element exactly once. *)

type instance = {
  q : int;  (** universe size is [3 * q] *)
  triples : (int * int * int) array;
}

val make : q:int -> (int * int * int) list -> instance
(** Validates ranges and that each triple has three distinct
    elements. *)

val universe_size : instance -> int

val solve : instance -> int list option
(** Indices of the triples of an exact cover, via depth-first search on
    the first uncovered element (fast in practice on the sizes used
    here; exponential worst case, as it must be). *)

val verify : instance -> int list -> bool

val pp : Format.formatter -> instance -> unit
