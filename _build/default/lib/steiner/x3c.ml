type instance = { q : int; triples : (int * int * int) array }

let make ~q triples =
  if q < 0 then invalid_arg "X3c.make: negative q";
  let n = 3 * q in
  List.iter
    (fun (a, b, c) ->
      if a = b || b = c || a = c then
        invalid_arg "X3c.make: triple with repeated element";
      if a < 0 || a >= n || b < 0 || b >= n || c < 0 || c >= n then
        invalid_arg "X3c.make: element out of range")
    triples;
  { q; triples = Array.of_list triples }

let universe_size inst = 3 * inst.q

let solve inst =
  let n = universe_size inst in
  let covered = Array.make n false in
  let by_element = Array.make n [] in
  Array.iteri
    (fun i (a, b, c) ->
      by_element.(a) <- i :: by_element.(a);
      by_element.(b) <- i :: by_element.(b);
      by_element.(c) <- i :: by_element.(c))
    inst.triples;
  let rec first_uncovered x = if x >= n || not covered.(x) then x else first_uncovered (x + 1) in
  let rec search chosen x =
    let x = first_uncovered x in
    if x >= n then Some (List.rev chosen)
    else
      let try_triple acc i =
        match acc with
        | Some _ -> acc
        | None ->
          let a, b, c = inst.triples.(i) in
          if covered.(a) || covered.(b) || covered.(c) then None
          else begin
            covered.(a) <- true;
            covered.(b) <- true;
            covered.(c) <- true;
            let r = search (i :: chosen) x in
            covered.(a) <- false;
            covered.(b) <- false;
            covered.(c) <- false;
            r
          end
      in
      List.fold_left try_triple None by_element.(x)
  in
  search [] 0

let verify inst chosen =
  let n = universe_size inst in
  let count = Array.make n 0 in
  let valid_index i = i >= 0 && i < Array.length inst.triples in
  List.for_all valid_index chosen
  && begin
       List.iter
         (fun i ->
           let a, b, c = inst.triples.(i) in
           count.(a) <- count.(a) + 1;
           count.(b) <- count.(b) + 1;
           count.(c) <- count.(c) + 1)
         chosen;
       Array.for_all (fun k -> k = 1) count
     end

let pp ppf inst =
  Format.fprintf ppf "@[<v>X3C: |X| = %d@," (universe_size inst);
  Array.iteri
    (fun i (a, b, c) -> Format.fprintf ppf "  c%d = {%d, %d, %d}@," i a b c)
    inst.triples;
  Format.fprintf ppf "@]"
