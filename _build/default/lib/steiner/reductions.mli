(** The paper's two NP-hardness reductions, built as executable
    artifacts so the test suite can validate them end to end and the
    benchmark harness can measure the exponential blow-up they
    predict. *)

open Graphs
open Bipartite

(** {1 Theorem 2: X3C → Steiner on V₂-chordal V₂-conformal graphs} *)

type theorem2_instance = {
  graph : Bigraph.t;
      (** V₁ = one node per triple; V₂ = one node per element plus the
          universal node [u²] (right index 0) *)
  terminals : Iset.t;  (** all of V₂, as underlying indices *)
  budget : int;  (** [4q + 1] *)
}

val theorem2 : X3c.instance -> theorem2_instance

val theorem2_gadget_ok : theorem2_instance -> bool
(** The gadget is V₂-chordal and V₂-conformal (H¹ α-acyclic), as the
    proof claims. *)

val steiner_within_budget : theorem2_instance -> bool
(** Exact Steiner (Dreyfus–Wagner) finds a tree over the terminals with
    at most [budget] nodes. By Theorem 2 this holds iff the X3C
    instance is solvable. Exponential in [3q + 1] terminals. *)

(** {1 Fig. 9: Steiner in chordal graphs → pseudo-Steiner w.r.t. V₂} *)

val fig9 : Ugraph.t -> Bigraph.t
(** Incidence bipartite graph: V₁ = the graph's nodes, V₂ = one node
    per arc, adjacent to the arc's endpoints. V₁-side properties of the
    result mirror chordality of the input; pseudo-Steiner w.r.t. V₂
    over a node set equals the minimum number of arcs of a connected
    subgraph over it (the CSPC problem of White–Farber–Pulleyblank). *)

val fig9_is_v2_chordal : Ugraph.t -> bool
(** The reduced graph is V₂-chordal whenever the input is chordal —
    G(H¹) of the incidence graph is the input graph itself — while
    V₂-conformity fails on any triangle: exactly the "chordality
    without conformity" regime whose pseudo-Steiner problem the paper
    proves NP-hard. *)

val cspc_optimum : Ugraph.t -> terminals:Iset.t -> int option
(** Minimum number of arcs of a connected subgraph over the terminals
    (= exact Steiner edge count). *)

val fig9_equivalence_holds : Ugraph.t -> terminals:Iset.t -> bool
(** [cspc_optimum] on the input equals the brute-force pseudo-Steiner
    V₂ optimum on the reduced graph. Exponential oracle; small inputs
    only. *)
