open Graphs

let tree_of_nodes g ~terminals nodes =
  match Traverse.component_containing ~within:nodes g terminals with
  | None -> None
  | Some comp -> (
    match Tree.of_node_set g comp with
    | None -> None
    | Some t ->
      let pruned = Tree.prune_leaves g ~keep:terminals t in
      Tree.of_node_set g pruned.Tree.nodes)

let solve ?(iterations = 200) ~seed g ~terminals =
  match Mst_approx.solve g ~terminals with
  | None -> None
  | Some start ->
    let state = Random.State.make [| seed; 0x10ca1 |] in
    let rand bound = if bound <= 0 then 0 else Random.State.int state bound in
    let current = ref start in
    let try_nodes nodes =
      match tree_of_nodes g ~terminals nodes with
      | Some t when Tree.node_count t < Tree.node_count !current ->
        current := t;
        true
      | Some _ | None -> false
    in
    for _ = 1 to iterations do
      let aux = Iset.elements (Iset.diff (!current).Tree.nodes terminals) in
      if aux <> [] then begin
        let v = List.nth aux (rand (List.length aux)) in
        (* Move 1: plain deletion. *)
        let deleted = Iset.remove v (!current).Tree.nodes in
        if not (try_nodes deleted) then begin
          (* Move 2: deletion plus reconnection of the fragments via
             shortest paths between the terminal components. *)
          match Traverse.component_containing ~within:deleted g terminals with
          | Some _ -> ()
          | None ->
            (* Reconnect the components through a shortest path in the
               full graph avoiding v. *)
            let within = Iset.remove v (Ugraph.nodes g) in
            let comps = Traverse.components ~within:deleted g in
            (match comps with
            | c1 :: c2 :: _ ->
              let pick c = Iset.min_elt c in
              (match
                 Traverse.shortest_path ~within g (pick c1) (pick c2)
               with
              | Some path ->
                let nodes =
                  List.fold_left
                    (fun acc x -> Iset.add x acc)
                    deleted path
                in
                ignore (try_nodes nodes)
              | None -> ())
            | _ -> ())
        end
      end
    done;
    Some !current
