(** Steiner trees on forests — the (4,1)-chordal / Berge-acyclic row of
    the paper's complexity table, where the minimal connection is
    {e unique}: the union of the tree paths between terminals. Linear
    time, no search. *)

open Graphs

val solve : Ugraph.t -> terminals:Iset.t -> Tree.t option
(** [None] when the graph restricted to the terminals' component is not
    a tree (callers guard with {!Graphs.Cycles.is_acyclic}) or the
    terminals are disconnected. *)
