(** Spanning trees and forests (unweighted). *)

val spanning_tree : ?within:Iset.t -> Ugraph.t -> (int * int) list option
(** BFS spanning tree of the induced subgraph: [Some edges] when the
    subgraph is connected ([Some []] for 0 or 1 nodes), [None]
    otherwise. *)

val spanning_forest : ?within:Iset.t -> Ugraph.t -> (int * int) list
(** One BFS tree per component. *)

val is_tree : ?within:Iset.t -> Ugraph.t -> bool
(** The induced subgraph is connected and has exactly [|V'| - 1] edges.
    The empty subgraph counts as a tree. *)

val tree_check : Ugraph.t -> over:Iset.t -> (int * int) list -> bool
(** [tree_check g ~over es] verifies that [es] are edges of [g] forming
    a tree whose node set is exactly [over]. Used by the test suite to
    validate every Steiner-tree output. *)
