let closed_neighborhood g ~within v =
  Iset.add v (Ugraph.adj_within g ~within v)

let is_simple_vertex g ~within v =
  let hood = closed_neighborhood g ~within v in
  let closed = List.map (closed_neighborhood g ~within) (Iset.elements hood) in
  let sorted =
    List.sort (fun a b -> compare (Iset.cardinal a) (Iset.cardinal b)) closed
  in
  let rec chain = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> Iset.subset a b && chain rest
  in
  chain sorted

let simple_elimination_order g =
  let rec go within order =
    if Iset.is_empty within then Some (List.rev order)
    else
      match
        List.find_opt (is_simple_vertex g ~within) (Iset.elements within)
      with
      | None -> None
      | Some v -> go (Iset.remove v within) (v :: order)
  in
  go (Ugraph.nodes g) []

let is_strongly_chordal g = simple_elimination_order g <> None

let is_strongly_chordal_brute g =
  Chordal.is_chordal_brute g
  &&
  let ok = ref true in
  Cycles.iter_simple_cycles ~min_len:6 g (fun cyc ->
      if !ok then begin
        let arr = Array.of_list cyc in
        let k = Array.length arr in
        if k mod 2 = 0 then begin
          let has_odd_chord = ref false in
          for i = 0 to k - 1 do
            for j = i + 1 to k - 1 do
              let d = j - i in
              let dist = min d (k - d) in
              if
                dist mod 2 = 1 && dist > 1
                && Ugraph.mem_edge g arr.(i) arr.(j)
              then has_odd_chord := true
            done
          done;
          if not !has_odd_chord then ok := false
        end
      end);
  !ok

let sun k =
  if k < 3 then invalid_arg "Strongly_chordal.sun: need k >= 3";
  (* rim w_i = i, hub u_i = k + i *)
  let b = Ugraph.Builder.create (2 * k) in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      Ugraph.Builder.add_edge b (k + i) (k + j)
    done
  done;
  for i = 0 to k - 1 do
    Ugraph.Builder.add_edge b i (k + i);
    Ugraph.Builder.add_edge b i (k + ((i + 1) mod k))
  done;
  Ugraph.Builder.build b
