let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
                      (List.init (String.length s) (String.get s)))

let of_ugraph ?(name = "G") ?(labels = string_of_int) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph \"%s\" {\n" (escape name));
  Iset.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" v (escape (labels v))))
    (Ugraph.nodes g);
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  n%d -- n%d;\n" u v))
    (Ugraph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_bipartite_like ?(name = "G") ~left_labels ~right_labels ~nl ~nr edges =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph \"%s\" {\n  rankdir=LR;\n" (escape name));
  Buffer.add_string buf "  subgraph cluster_left { label=\"V1\";\n";
  for i = 0 to nl - 1 do
    Buffer.add_string buf
      (Printf.sprintf "    l%d [label=\"%s\" shape=box];\n" i
         (escape (left_labels i)))
  done;
  Buffer.add_string buf "  }\n  subgraph cluster_right { label=\"V2\";\n";
  for j = 0 to nr - 1 do
    Buffer.add_string buf
      (Printf.sprintf "    r%d [label=\"%s\" shape=ellipse];\n" j
         (escape (right_labels j)))
  done;
  Buffer.add_string buf "  }\n";
  List.iter
    (fun (i, j) -> Buffer.add_string buf (Printf.sprintf "  l%d -- r%d;\n" i j))
    edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
