include Set.Make (Int)

let of_array a = Array.fold_left (fun s x -> add x s) empty a

let range n =
  let rec go acc i = if i < 0 then acc else go (add i acc) (i - 1) in
  go empty (n - 1)

let to_list_sorted = elements

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (elements s)

let to_string s = Format.asprintf "%a" pp s
