let default_within g = function
  | Some w -> w
  | None -> Ugraph.nodes g

let iter_maximal_cliques ?within g f =
  let w = default_within g within in
  let adj u = Ugraph.adj_within g ~within:w u in
  (* Bron–Kerbosch with a pivot chosen to maximise |P ∩ N(pivot)|. *)
  let rec bk r p x =
    if Iset.is_empty p && Iset.is_empty x then f r
    else begin
      let candidates = Iset.union p x in
      let pivot, _ =
        Iset.fold
          (fun u ((_, best) as acc) ->
            let score = Iset.cardinal (Iset.inter p (adj u)) in
            if score > best then (u, score) else acc)
          candidates
          (Iset.min_elt candidates, -1)
      in
      let expand = Iset.diff p (adj pivot) in
      let p = ref p and x = ref x in
      Iset.iter
        (fun v ->
          bk (Iset.add v r) (Iset.inter !p (adj v)) (Iset.inter !x (adj v));
          p := Iset.remove v !p;
          x := Iset.add v !x)
        expand
    end
  in
  if not (Iset.is_empty w) then bk Iset.empty w Iset.empty

let maximal_cliques ?within g =
  let acc = ref [] in
  iter_maximal_cliques ?within g (fun c -> acc := c :: !acc);
  List.rev !acc

let max_clique_size ?within g =
  let best = ref 0 in
  iter_maximal_cliques ?within g (fun c -> best := max !best (Iset.cardinal c));
  !best
