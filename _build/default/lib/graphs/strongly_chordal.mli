(** Strongly chordal graphs (Farber), the class of the paper's
    reference [16] (White–Farber–Pulleyblank): Steiner trees are
    NP-hard on chordal graphs but polynomial on strongly chordal ones —
    the non-bipartite mirror of the paper's (6,1) vs (6,2) gap, and the
    source of the Fig. 9 reduction's input class.

    A vertex is {e simple} when the closed neighborhoods of its closed
    neighborhood form an inclusion chain; a graph is strongly chordal
    iff repeatedly deleting simple vertices deletes everything
    (equivalently: chordal and every even cycle of length ≥ 6 has an
    odd chord). *)

val closed_neighborhood : Ugraph.t -> within:Iset.t -> int -> Iset.t
(** [N[v]] within the induced subgraph. *)

val is_simple_vertex : Ugraph.t -> within:Iset.t -> int -> bool

val simple_elimination_order : Ugraph.t -> int list option

val is_strongly_chordal : Ugraph.t -> bool

val is_strongly_chordal_brute : Ugraph.t -> bool
(** Definitional oracle: chordal, and every even cycle of length at
    least 6 has a chord joining two vertices at odd distance along the
    cycle. Exponential. *)

val sun : int -> Ugraph.t
(** The [k]-sun ([k >= 3]): a clique [u0..u(k-1)] plus an independent
    rim [w0..w(k-1)] with [wi] adjacent to [ui] and [u(i+1)]. Suns are
    chordal but never strongly chordal — the canonical separating
    family. Rim vertices come first ([0..k-1]), hub vertices after. *)
