(** Graphviz DOT export, for inspecting instances and figures. *)

val of_ugraph : ?name:string -> ?labels:(int -> string) -> Ugraph.t -> string

val of_bipartite_like :
  ?name:string ->
  left_labels:(int -> string) ->
  right_labels:(int -> string) ->
  nl:int ->
  nr:int ->
  (int * int) list ->
  string
(** Renders a two-column layout; edges are (left index, right index). *)
