(** Maximal clique enumeration (Bron–Kerbosch with pivoting).

    Used as the brute-force side of conformality checks: a hypergraph is
    conformal exactly when every maximal clique of its 2-section is
    contained in a hyperedge. Worst-case exponential, as it must be. *)

val iter_maximal_cliques : ?within:Iset.t -> Ugraph.t -> (Iset.t -> unit) -> unit

val maximal_cliques : ?within:Iset.t -> Ugraph.t -> Iset.t list

val max_clique_size : ?within:Iset.t -> Ugraph.t -> int
(** 0 on the empty (sub)graph. *)
