lib/graphs/spanning.mli: Iset Ugraph
