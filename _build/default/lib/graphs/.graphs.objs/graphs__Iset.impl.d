lib/graphs/iset.ml: Array Format Int Set
