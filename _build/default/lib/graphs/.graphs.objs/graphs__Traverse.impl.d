lib/graphs/traverse.ml: Array Iset List Queue Ugraph
