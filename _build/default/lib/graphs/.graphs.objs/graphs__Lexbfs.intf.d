lib/graphs/lexbfs.mli: Iset Ugraph
