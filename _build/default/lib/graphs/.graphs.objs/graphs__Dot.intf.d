lib/graphs/dot.mli: Ugraph
