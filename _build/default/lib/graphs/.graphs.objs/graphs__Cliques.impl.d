lib/graphs/cliques.ml: Iset List Ugraph
