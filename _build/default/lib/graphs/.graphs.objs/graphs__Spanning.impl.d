lib/graphs/spanning.ml: Array Hashtbl Iset List Queue Traverse Ugraph
