lib/graphs/ugraph.mli: Format Iset
