lib/graphs/chordal.mli: Iset Ugraph
