lib/graphs/cycles.mli: Iset Ugraph
