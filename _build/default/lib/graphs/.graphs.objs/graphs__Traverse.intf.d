lib/graphs/traverse.mli: Iset Ugraph
