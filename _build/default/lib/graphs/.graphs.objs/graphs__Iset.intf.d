lib/graphs/iset.mli: Format Set
