lib/graphs/dot.ml: Buffer Iset List Printf String Ugraph
