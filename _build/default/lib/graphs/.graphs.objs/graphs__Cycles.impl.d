lib/graphs/cycles.ml: Array Iset List Traverse Ugraph
