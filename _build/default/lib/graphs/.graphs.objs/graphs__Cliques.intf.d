lib/graphs/cliques.mli: Iset Ugraph
