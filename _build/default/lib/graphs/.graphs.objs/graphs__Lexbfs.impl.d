lib/graphs/lexbfs.ml: Array Hashtbl Iset List Ugraph
