lib/graphs/chordal.ml: Cycles Hashtbl Iset Lexbfs List Ugraph
