lib/graphs/strongly_chordal.ml: Array Chordal Cycles Iset List Ugraph
