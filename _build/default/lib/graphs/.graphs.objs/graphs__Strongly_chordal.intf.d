lib/graphs/strongly_chordal.mli: Iset Ugraph
