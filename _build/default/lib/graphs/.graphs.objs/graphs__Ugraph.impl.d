lib/graphs/ugraph.ml: Array Format Hashtbl Iset List
