let default_within g = function
  | Some w -> w
  | None -> Ugraph.nodes g

(* Generic greedy search: repeatedly pick an unvisited node with the
   best label (ties broken by smallest id), then let each unvisited
   neighbor absorb the visit timestamp into its label. LexBFS compares
   timestamp lists lexicographically; MCS compares their lengths. *)
let greedy_order ~better ?within ?start g =
  let w = default_within g within in
  let labels = Hashtbl.create 16 in
  let label v =
    match Hashtbl.find_opt labels v with Some l -> l | None -> []
  in
  let visited = Array.make (Ugraph.n g) false in
  let order = ref [] in
  let pick () =
    Iset.fold
      (fun v acc ->
        if visited.(v) then acc
        else
          match acc with
          | None -> Some v
          | Some u -> if better (label v) (label u) then Some v else Some u)
      w None
  in
  let visit time v =
    visited.(v) <- true;
    order := v :: !order;
    Iset.iter
      (fun u ->
        if not visited.(u) then Hashtbl.replace labels u (label u @ [ time ]))
      (Ugraph.adj_within g ~within:w v)
  in
  (match start with
  | Some s when Iset.mem s w -> visit 0 s
  | Some _ | None -> ());
  let time = ref (List.length !order) in
  let rec loop () =
    match pick () with
    | None -> ()
    | Some v ->
      visit !time v;
      incr time;
      loop ()
  in
  loop ();
  List.rev !order

(* Labels are increasing timestamp lists (earliest visited neighbor
   first). The LexBFS rule treats earlier timestamps as lexicographically
   greater symbols, and a proper extension of a label beats the label. *)
let rec lex_gt a b =
  match (a, b) with
  | [], _ -> false
  | _ :: _, [] -> true
  | x :: a', y :: b' -> x < y || (x = y && lex_gt a' b')

let lexbfs_order ?within ?start g =
  greedy_order ~better:lex_gt ?within ?start g

let mcs_order ?within ?start g =
  let better a b = List.length a > List.length b in
  greedy_order ~better ?within ?start g

let lexbfs_partition_order ?within ?start g =
  let w = match within with Some w -> w | None -> Ugraph.nodes g in
  let initial =
    match start with
    | Some s when Iset.mem s w ->
      [ [ s ]; Iset.elements (Iset.remove s w) ]
    | Some _ | None -> [ Iset.elements w ]
  in
  let rec go classes order =
    match classes with
    | [] -> List.rev order
    | [] :: rest -> go rest order
    | (v :: vs) :: rest ->
      let remaining = if vs = [] then rest else vs :: rest in
      let nb = Ugraph.adj_within g ~within:w v in
      let refined =
        List.concat_map
          (fun cls ->
            let inside, outside =
              List.partition (fun u -> Iset.mem u nb) cls
            in
            List.filter (fun l -> l <> []) [ inside; outside ])
          remaining
      in
      go refined (v :: order)
  in
  go initial []
