(** Lexicographic breadth-first search and maximum cardinality search.

    These are the two classical linear-time vertex orderings whose
    reversal is a perfect elimination ordering exactly on chordal
    graphs (Rose–Tarjan–Lueker; Tarjan–Yannakakis). The implementation
    is the straightforward O(n^2) label version, ample for this
    repository's instance sizes. *)

val lexbfs_order : ?within:Iset.t -> ?start:int -> Ugraph.t -> int list
(** Visit order (first visited first). Components are exhausted one at a
    time; [start] selects the first node. *)

val lexbfs_partition_order : ?within:Iset.t -> ?start:int -> Ugraph.t -> int list
(** Independent second implementation by partition refinement (the
    linear-time scheme): maintain an ordered partition of the unvisited
    nodes; visit the head of the first class and split every class into
    neighbors-then-others. Tie-breaking differs from {!lexbfs_order},
    so the orders need not coincide, but both are valid LexBFS orders —
    the chordality test accepts either (property-tested). *)

val mcs_order : ?within:Iset.t -> ?start:int -> Ugraph.t -> int list
(** Maximum cardinality search visit order. *)
