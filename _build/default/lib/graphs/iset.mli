(** Sets of integers, used throughout for node and edge identifiers.

    This is [Set.Make (Int)] extended with a few conveniences that the
    graph and hypergraph code needs everywhere: construction from lists
    and arrays, a range constructor, and printing. *)

include Set.S with type elt = int

val of_array : int array -> t

val range : int -> t
(** [range n] is the set [{0, 1, ..., n-1}]; empty when [n <= 0]. *)

val to_list_sorted : t -> int list
(** Elements in increasing order (alias of [elements], named for
    clarity at call sites). *)

val pp : Format.formatter -> t -> unit
(** Prints as [{0, 3, 7}]. *)

val to_string : t -> string
