let default_within g = function
  | Some w -> w
  | None -> Ugraph.nodes g

let spanning_forest ?within g =
  let w = default_within g within in
  let seen = Array.make (Ugraph.n g) false in
  let acc = ref [] in
  let visit s =
    if (not seen.(s)) && Iset.mem s w then begin
      seen.(s) <- true;
      let q = Queue.create () in
      Queue.add s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        Iset.iter
          (fun v ->
            if not seen.(v) then begin
              seen.(v) <- true;
              acc := (u, v) :: !acc;
              Queue.add v q
            end)
          (Ugraph.adj_within g ~within:w u)
      done
    end
  in
  Iset.iter visit w;
  List.rev !acc

let spanning_tree ?within g =
  let w = default_within g within in
  let es = spanning_forest ~within:w g in
  if List.length es = max 0 (Iset.cardinal w - 1) then Some es else None

let is_tree ?within g =
  let w = default_within g within in
  if Iset.is_empty w then true
  else
    Traverse.is_connected ~within:w g
    &&
    let count =
      Iset.fold
        (fun u acc -> acc + Iset.cardinal (Ugraph.adj_within g ~within:w u))
        w 0
    in
    count / 2 = Iset.cardinal w - 1

let tree_check g ~over es =
  let touched =
    List.fold_left
      (fun s (u, v) -> Iset.add u (Iset.add v s))
      Iset.empty es
  in
  let all_edges_exist = List.for_all (fun (u, v) -> Ugraph.mem_edge g u v) es in
  let covers =
    if Iset.cardinal over <= 1 then Iset.subset touched over
    else Iset.equal touched over
  in
  let edge_count_ok = List.length es = max 0 (Iset.cardinal over - 1) in
  (* Connectivity of the edge set: union-find over the edges. *)
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None | Some (-1) -> x
    | Some p ->
      let r = find p in
      Hashtbl.replace parent x r;
      r
  in
  let union x y =
    let rx = find x and ry = find y in
    if rx <> ry then Hashtbl.replace parent rx ry
  in
  List.iter (fun (u, v) -> union u v) es;
  let connected =
    match Iset.min_elt_opt over with
    | None -> true
    | Some r0 ->
      let root = find r0 in
      Iset.for_all (fun v -> find v = root) over
  in
  all_edges_exist && covers && edge_count_ok && connected
