(* The universal-relation interface end to end (the paper's Section 1
   motivation): a casual user asks for attributes; the system finds the
   minimal conceptual connection, proposes alternative interpretations,
   and evaluates the chosen one with Yannakakis' algorithm.

   Run with: dune exec examples/company_interface.exe *)

let db =
  Relalg.Database.make
    [
      ( "employee",
        Relalg.Relation.make ~attrs:[ "emp"; "birthdate" ]
          [
            [ "alice"; "1958-03-14" ];
            [ "bob"; "1961-07-02" ];
            [ "carol"; "1955-11-30" ];
          ] );
      ( "works",
        Relalg.Relation.make ~attrs:[ "emp"; "dept"; "since" ]
          [
            [ "alice"; "toys"; "1980-01-01" ];
            [ "bob"; "books"; "1982-06-15" ];
            [ "carol"; "toys"; "1979-04-01" ];
          ] );
      ( "department",
        Relalg.Relation.make ~attrs:[ "dept"; "floor" ]
          [ [ "toys"; "1" ]; [ "books"; "2" ] ] );
      ( "manages",
        Relalg.Relation.make ~attrs:[ "floor"; "manager" ]
          [ [ "1"; "zoe" ]; [ "2"; "yann" ] ] );
    ]

let show_answer (a : Datamodel.Interface.answer) =
  Format.printf "  via relations: %s (auxiliary objects: %s)@."
    (String.concat ", " a.Datamodel.Interface.connection.Datamodel.Query.relations_used)
    (match a.Datamodel.Interface.connection.Datamodel.Query.auxiliary with
    | [] -> "none"
    | l -> String.concat ", " l);
  Format.printf "  %a@." Relalg.Relation.pp a.Datamodel.Interface.result

let ask query =
  Format.printf "@.query {%s}:@." (String.concat ", " query);
  match Datamodel.Interface.answer db ~query with
  | Ok a -> show_answer a
  | Error (Datamodel.Query.Unknown_object o) ->
    Format.printf "  unknown object %s@." o
  | Error Datamodel.Query.Disconnected ->
    Format.printf "  objects cannot be connected@."
  | Error (Datamodel.Query.Not_applicable m) -> Format.printf "  %s@." m

let () =
  let schema = Datamodel.Schema.of_database db in
  Format.printf "scheme acyclicity: %s@."
    (Hypergraphs.Acyclicity.degree_name (Datamodel.Schema.acyclicity schema));

  (* The paper's headline scenario: the same pair of objects admits
     several interpretations; the system ranks them by the number of
     concepts disclosed. *)
  Format.printf "@.interpretations of {emp, since}:@.";
  Datamodel.Interface.interpretations ~k:3 db ~query:[ "emp"; "since" ]
  |> List.iteri (fun i a ->
         Format.printf "-- interpretation %d --@." (i + 1);
         show_answer a);

  ask [ "emp"; "manager" ];
  ask [ "birthdate"; "floor" ];
  ask [ "emp"; "dept"; "manager" ];

  (* Show the acyclicity payoff: the full reducer prunes dangling
     tuples before any join. *)
  Format.printf "@.full semijoin reduction (Yannakakis):@.";
  match Relalg.Yannakakis.plan db with
  | Relalg.Yannakakis.Acyclic jt ->
    let reduced = Relalg.Yannakakis.full_reducer db jt in
    List.iter2
      (fun (n, before) (_, after) ->
        Format.printf "  %-12s %d -> %d tuples@." n
          (Relalg.Relation.cardinality before)
          (Relalg.Relation.cardinality after))
      (Relalg.Database.relations db)
      (Relalg.Database.relations reduced)
  | Relalg.Yannakakis.Naive_fallback -> Format.printf "  (scheme is cyclic)@."
