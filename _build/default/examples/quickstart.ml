(* Quickstart: model a database scheme, classify it, and answer a
   query stated purely in attribute names.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A university scheme: relations over shared attributes. *)
  let schema =
    Minconn.Schema.make
      [
        ("enrolled", [ "student"; "course" ]);
        ("taught_by", [ "course"; "lecturer" ]);
        ("office", [ "lecturer"; "room" ]);
        ("building", [ "room"; "campus" ]);
      ]
  in
  (* 1. Classification: which of the paper's chordality classes does
     the scheme's bipartite graph fall into, and what does that buy? *)
  print_endline "== classification ==";
  print_string (Minconn.report (Minconn.Schema.to_bigraph schema));
  print_newline ();

  (* 2. A minimal conceptual connection: the user mentions only
     attribute names; the system discovers which relations connect
     them and how. *)
  print_endline "== query {student, room} ==";
  (match Minconn.Query.minimal_connection schema ~objects:[ "student"; "room" ] with
  | Ok c ->
    Format.printf "%a@." Minconn.Query.pp_connection c
  | Error _ -> print_endline "no connection");
  print_newline ();

  (* 3. The same query, minimising the number of relations touched
     (Algorithm 1 / Theorem 4). *)
  print_endline "== fewest relations for {student, campus} ==";
  match Minconn.Query.min_relations schema ~objects:[ "student"; "campus" ] with
  | Ok (c, count) ->
    Format.printf "%d relations: %s@." count
      (String.concat ", " c.Minconn.Query.relations_used)
  | Error _ -> print_endline "not applicable"
