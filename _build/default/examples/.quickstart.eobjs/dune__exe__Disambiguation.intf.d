examples/disambiguation.mli:
