examples/quickstart.mli:
