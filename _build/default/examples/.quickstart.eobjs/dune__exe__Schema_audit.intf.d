examples/schema_audit.mli:
