examples/schema_audit.ml: Bipartite Datamodel Format Hypergraphs List Query Repair Schema String
