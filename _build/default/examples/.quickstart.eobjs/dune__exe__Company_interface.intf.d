examples/company_interface.mli:
