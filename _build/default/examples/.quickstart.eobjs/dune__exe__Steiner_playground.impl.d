examples/steiner_playground.ml: Algorithm2 Bigraph Bipartite Datamodel Dreyfus_wagner Format Graphs Iset List Mn_chordality Mst_approx Printf Reductions Steiner String Sys Tree Workloads
