examples/concept_hierarchy.mli:
