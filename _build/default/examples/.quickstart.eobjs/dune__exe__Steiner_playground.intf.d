examples/steiner_playground.mli:
