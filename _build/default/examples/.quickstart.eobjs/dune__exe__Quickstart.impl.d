examples/quickstart.ml: Format Minconn String
