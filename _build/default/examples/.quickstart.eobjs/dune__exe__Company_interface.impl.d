examples/company_interface.ml: Datamodel Format Hypergraphs List Relalg String
