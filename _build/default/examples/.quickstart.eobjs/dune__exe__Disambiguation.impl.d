examples/disambiguation.ml: Datamodel Dialogue Format Hypergraphs List Query Schema String
