examples/concept_hierarchy.ml: Bipartite Datamodel Format Layered List String
