(* Audit a portfolio of database schemes: compute each scheme's
   acyclicity degree and the matching solver guarantees from the
   paper's complexity map — the kind of design-time feedback the
   D'Atri–Moscarini design methodology (reference [4]) advocates.

   Run with: dune exec examples/schema_audit.exe *)

open Datamodel

let schemas =
  [
    ( "order-entry (chain)",
      Schema.make
        [
          ("customer", [ "cust"; "city" ]);
          ("orders", [ "cust"; "order_id" ]);
          ("lines", [ "order_id"; "part" ]);
          ("stock", [ "part"; "warehouse" ]);
        ] );
    ( "star (data mart)",
      Schema.make
        [
          ("fact", [ "day"; "store"; "part"; "amount" ]);
          ("dim_day", [ "day"; "month" ]);
          ("dim_store", [ "store"; "region" ]);
          ("dim_part", [ "part"; "brand" ]);
        ] );
    ( "triangle (cyclic)",
      Schema.make
        [
          ("supplies", [ "supplier"; "part" ]);
          ("orders", [ "part"; "project" ]);
          ("contracts", [ "project"; "supplier" ]);
        ] );
    ( "covered triangle (alpha only)",
      Schema.make
        [
          ("supplies", [ "supplier"; "part" ]);
          ("orders", [ "part"; "project" ]);
          ("contracts", [ "project"; "supplier" ]);
          ("deals", [ "supplier"; "part"; "project" ]);
        ] );
    ( "beta flower",
      Schema.make
        [
          ("p1", [ "hub"; "x1" ]);
          ("p2", [ "hub"; "x2" ]);
          ("p3", [ "hub"; "x3" ]);
          ("all", [ "hub"; "x1"; "x2"; "x3" ]);
        ] );
  ]

let () =
  Format.printf "%-32s %-16s %s@." "schema" "degree" "guarantee";
  Format.printf "%s@." (String.make 100 '-');
  List.iter
    (fun (name, schema) ->
      let degree = Schema.acyclicity schema in
      let profile = Schema.profile schema in
      Format.printf "%-32s %-16s %s@." name
        (Hypergraphs.Acyclicity.degree_name degree)
        (Bipartite.Classify.recommendation_name
           (Bipartite.Classify.recommend profile)))
    schemas;
  Format.printf "@.details:@.";
  List.iter
    (fun (name, schema) ->
      Format.printf "@.== %s ==@.%a@." name Schema.pp schema;
      Format.printf "%a@." Bipartite.Classify.pp_profile (Schema.profile schema);
      (* Sample query on each: connect the first and last attribute. *)
      let attrs = Schema.attributes schema in
      (match (attrs, List.rev attrs) with
      | a :: _, z :: _ when a <> z -> (
        match Query.minimal_connection schema ~objects:[ a; z ] with
        | Ok c ->
          Format.printf "query {%s, %s}: %d objects, %d relations%s@." a z
            (List.length c.Query.objects)
            (List.length c.Query.relations_used)
            (if c.Query.optimal then " (provably minimal)" else "")
        | Error _ -> Format.printf "query {%s, %s}: not connectable@." a z)
      | _ -> ());
      print_string (Repair.report schema))
    schemas
