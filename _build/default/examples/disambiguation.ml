(* A scripted run of the paper's interactive disambiguation procedure
   (Section 1): the system proposes interpretations from smallest to
   largest; the "user" — simulated here — rejects until the intended
   reading appears, and we track how many auxiliary concepts had to be
   disclosed.

   Run with: dune exec examples/disambiguation.exe *)

open Datamodel

let schema =
  (* Publications world: an 'authored' relationship and a 'cites'
     relationship both connect papers; person meets year through either
     authorship or editorship. *)
  Schema.make
    [
      ("authored", [ "person"; "paper" ]);
      ("published", [ "paper"; "venue"; "year" ]);
      ("edited", [ "person"; "venue" ]);
      ("located", [ "venue"; "city" ]);
    ]

let show_connection (c : Query.connection) =
  Format.printf "    objects: {%s}@." (String.concat ", " c.Query.objects);
  Format.printf "    via relations: %s@."
    (String.concat ", " c.Query.relations_used)

let run_dialogue ~objects ~accept_when =
  Format.printf "@.query {%s}:@." (String.concat ", " objects);
  let rec drive d round =
    match Dialogue.current d with
    | Dialogue.Proposing c ->
      Format.printf "  proposal %d:@." round;
      show_connection c;
      if accept_when c then begin
        Format.printf "  -> user accepts.@.";
        drive (Dialogue.step d Dialogue.Accept) round
      end
      else begin
        Format.printf "  -> user rejects; disclosing more concepts.@.";
        drive (Dialogue.step d Dialogue.Reject) (round + 1)
      end
    | Dialogue.Settled c ->
      Format.printf "  settled on {%s} after disclosing %d auxiliary concept(s).@."
        (String.concat ", " c.Query.objects)
        (List.length (Dialogue.disclosed d))
    | Dialogue.Exhausted -> Format.printf "  no interpretation accepted.@."
    | Dialogue.Failed _ -> Format.printf "  query failed.@."
  in
  drive (Dialogue.start schema ~objects) 1

let () =
  Format.printf "scheme degree: %s@."
    (Hypergraphs.Acyclicity.degree_name (Schema.acyclicity schema));
  (* User 1 wants the straightforward reading: person and year of their
     own papers. *)
  run_dialogue ~objects:[ "person"; "year" ] ~accept_when:(fun c ->
      List.mem "authored" c.Query.relations_used);
  (* User 2 means "years in which a venue this person edited published
     anything" — a longer navigation; the minimal proposal is wrong for
     them and gets rejected. *)
  run_dialogue ~objects:[ "person"; "year" ] ~accept_when:(fun c ->
      List.mem "edited" c.Query.relations_used);
  (* Weighted variant: make 'edited' costly to disclose and watch the
     minimal-cost connection avoid it. *)
  let cost = function "edited" -> 10 | _ -> 1 in
  match
    Query.weighted_connection schema ~objects:[ "person"; "city" ] ~cost
  with
  | Ok (c, total) ->
    Format.printf "@.weighted query {person, city} (edited costs 10):@.";
    show_connection c;
    Format.printf "    total disclosure cost: %d@." total
  | Error _ -> Format.printf "weighted query failed@."
