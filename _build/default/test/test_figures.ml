(* Validation of every reconstructed paper figure against the exact
   properties the text asserts about it. *)

open Graphs
open Hypergraphs
open Bipartite
open Steiner
open Datamodel

let check = Alcotest.(check bool)

(* -------------------------------------------------------------- Fig 1 *)

let test_fig1_interpretations () =
  let er = Figures.fig1_er in
  let interps = Er.interpretations ~k:3 er ~objects:Figures.fig1_query in
  check "at least two interpretations" true (List.length interps >= 2);
  let first = List.sort compare (List.hd interps) in
  (* Minimal interpretation: EMPLOYEE--DATE directly (birthdate), no
     auxiliary object. *)
  check "minimal connection has no auxiliary object" true
    (first = [ "DATE"; "EMPLOYEE" ]);
  let second = List.nth interps 1 in
  check "second interpretation goes through WORKS" true
    (List.mem "WORKS" second)

let test_fig1_graph_shape () =
  let er = Figures.fig1_er in
  check "fig1 object graph is not bipartite (3-partite with shared DATE)"
    false (Er.is_bipartite er);
  check "objects include all three levels" true
    (List.mem "EMPLOYEE" (Er.entities er)
    && List.mem "WORKS" (Er.relationships er)
    && List.mem "DATE" (Er.attributes er))

(* -------------------------------------------------------------- Fig 2 *)

let test_fig2_duality_failure () =
  let g = Figures.fig2.Figures.graph in
  let h1 = Correspond.h1_exn g in
  let h2 = Correspond.h2_exn g in
  check "H1 alpha-acyclic" true (Gyo.alpha_acyclic h1);
  check "H2 = dual is NOT alpha-acyclic" false (Gyo.alpha_acyclic h2);
  check "H2 equals dual of H1 (Definition 3)" true
    (Hypergraph.equal_modulo_order h2 (Hypergraph.dual h1));
  (* Theorem 1 (v)/(vi) on this instance. *)
  check "V2-chordal" true (Side_properties.chordal g Bigraph.V2);
  check "V2-conformal" true (Side_properties.conformal g Bigraph.V2);
  check "not both V1-chordal and V1-conformal" false
    (Side_properties.chordal g Bigraph.V1
    && Side_properties.conformal g Bigraph.V1)

(* ---------------------------------------------------------- Figs 3, 4 *)

let degree_of g =
  Acyclicity.degree (Correspond.h1_exn g)

let test_fig3a () =
  let g = Figures.fig3a.Figures.graph in
  check "forest" true (Mn_chordality.is_41_chordal g);
  check "H1 Berge-acyclic (Fig 4a)" true
    (degree_of g = Acyclicity.Berge_acyclic);
  check "brute (4,1)" true (Mn_chordality.is_mn_chordal_brute g ~m:4 ~n:1)

let test_fig3b () =
  let g = Figures.fig3b.Figures.graph in
  check "not a forest" false (Mn_chordality.is_41_chordal g);
  check "(6,2)-chordal" true (Mn_chordality.is_62_chordal g);
  check "H1 gamma- but not Berge-acyclic (Fig 4b)" true
    (degree_of g = Acyclicity.Gamma_acyclic);
  check "brute (6,2)" true (Mn_chordality.is_mn_chordal_brute g ~m:6 ~n:2)

let test_fig3c () =
  let g = Figures.fig3c.Figures.graph in
  check "(6,1)-chordal" true (Mn_chordality.is_61_chordal g);
  check "not (6,2)-chordal" false (Mn_chordality.is_62_chordal g);
  check "H1 beta- but not gamma-acyclic (Fig 4c)" true
    (degree_of g = Acyclicity.Beta_acyclic);
  check "brute (6,1)" true (Mn_chordality.is_mn_chordal_brute g ~m:6 ~n:1);
  check "brute not (6,2)" false (Mn_chordality.is_mn_chordal_brute g ~m:6 ~n:2)

(* Section 3's remark on Fig 3c: {A,B,C,E,1,3} is a minimum-V2 tree
   over {A,B,E} but not a Steiner tree. *)
let test_fig3c_pseudo_vs_steiner () =
  let g = Figures.fig3c.Figures.graph in
  let u = Bigraph.ugraph g in
  let p = Figures.fig3c_p in
  let pseudo = Figures.fig3c_pseudo_nodes in
  check "quoted node set is a cover of P" true (Cover.is_cover u ~p pseudo);
  let v2 = Bigraph.right_nodes g in
  let quoted_v2 = Iset.cardinal (Iset.inter pseudo v2) in
  (match Brute.v2_minimum g ~p with
  | Some (_, best) ->
    Alcotest.(check int) "quoted set attains the V2 minimum" best quoted_v2
  | None -> Alcotest.fail "v2_minimum found no cover");
  (match Dreyfus_wagner.optimum_nodes u ~terminals:p with
  | Some opt ->
    check "but it is not a Steiner tree (more nodes than optimum)" true
      (Iset.cardinal pseudo > opt)
  | None -> Alcotest.fail "Steiner optimum missing")

(* -------------------------------------------------------------- Fig 5 *)

let test_fig5 () =
  let g = Figures.fig5.Figures.graph in
  check "V2-chordal" true (Side_properties.chordal g Bigraph.V2);
  check "V2-conformal" true (Side_properties.conformal g Bigraph.V2);
  check "V1-chordal" true (Side_properties.chordal g Bigraph.V1);
  check "V1-conformal" true (Side_properties.conformal g Bigraph.V1);
  check "not (6,1)-chordal" false (Mn_chordality.is_61_chordal g);
  check "brute agrees: not (6,1)" false
    (Mn_chordality.is_mn_chordal_brute g ~m:6 ~n:1)

(* -------------------------------------------------------------- Fig 6 *)

let test_fig6 () =
  let inst = Figures.fig6_x3c in
  (match X3c.solve inst with
  | Some cover ->
    check "solver's cover verifies" true (X3c.verify inst cover);
    Alcotest.(check (list int)) "the cover is {c0, c2}" [ 0; 2 ] cover
  | None -> Alcotest.fail "Fig 6 instance is solvable");
  let red = Reductions.theorem2 inst in
  check "gadget is V2-chordal V2-conformal" true
    (Reductions.theorem2_gadget_ok red);
  check "Steiner within 4q+1 budget" true
    (Reductions.steiner_within_budget red)

(* -------------------------------------------------------------- Fig 8 *)

let test_fig8 () =
  let g = Figures.fig8.Figures.graph in
  let u = Bigraph.ugraph g in
  let p = Figures.fig8_p in
  let v1 = Bigraph.left_nodes g in
  check "nonredundant witness" true
    (Cover.is_nonredundant_cover u ~p Figures.fig8_nonredundant);
  (match Cover.minimum_cover_size_brute u ~within:(Ugraph.nodes u) ~p with
  | Some min_size ->
    check "nonredundant witness is not minimum" true
      (Iset.cardinal Figures.fig8_nonredundant > min_size);
    Alcotest.(check int)
      "minimum witness attains the minimum" min_size
      (Iset.cardinal Figures.fig8_minimum)
  | None -> Alcotest.fail "P should be connectable");
  check "minimum witness is a cover" true
    (Cover.is_cover u ~p Figures.fig8_minimum);
  check "V1-nonredundant witness" true
    (Cover.is_side_nonredundant_cover u ~p ~side:v1
       Figures.fig8_v1_nonredundant);
  (match Cover.side_minimum_brute u ~within:(Ugraph.nodes u) ~p ~side:v1 with
  | Some v1_min ->
    check "V1-nonredundant witness is not V1-minimum" true
      (Iset.cardinal (Iset.inter Figures.fig8_v1_nonredundant v1) > v1_min);
    Alcotest.(check int)
      "V1-minimum witness attains the V1 minimum" v1_min
      (Iset.cardinal (Iset.inter Figures.fig8_v1_minimum v1))
  | None -> Alcotest.fail "P should be connectable")

(* -------------------------------------------------------------- Fig 9 *)

let test_fig9 () =
  let input = Figures.fig9_chordal_input in
  check "input is chordal" true (Chordal.is_chordal input);
  let reduced = Reductions.fig9 input in
  check "reduction is V2-chordal" true
    (Reductions.fig9_is_v2_chordal input);
  check "reduction is not V2-conformal (triangles break it)" false
    (Side_properties.conformal reduced Bigraph.V2);
  let terminals = Iset.of_list [ 0; 4 ] in
  check "CSPC equals pseudo-Steiner V2 on the reduction" true
    (Reductions.fig9_equivalence_holds input ~terminals);
  check "reduced graph has one right node per arc" true
    (Bigraph.nr reduced = Ugraph.m input)

(* ------------------------------------------------------------- Fig 10 *)

let test_fig10 () =
  let g = Figures.fig10.Figures.graph in
  let u = Bigraph.ugraph g in
  check "(6,1)-chordal" true (Mn_chordality.is_61_chordal g);
  check "not (6,2)-chordal" false (Mn_chordality.is_62_chordal g);
  match Cover.nonredundant_nonminimum_pair u with
  | Some (_, _, path) ->
    check "witness path is nonredundant" true
      (Cover.is_nonredundant_path u path)
  | None ->
    Alcotest.fail "expected a nonredundant non-minimum path (Lemma 4)"

(* ------------------------------------------------------------- Fig 11 *)

let test_fig11_structure () =
  let g = Figures.fig11.Figures.graph in
  check "(6,1)-chordal" true (Mn_chordality.is_61_chordal g);
  check "not (6,2)-chordal" false (Mn_chordality.is_62_chordal g)

let ordering_starting_with l name rest_names =
  let idx n =
    match Figures.index_of_name l n with
    | Some v -> v
    | None -> invalid_arg "bad name"
  in
  idx name :: List.map idx rest_names

let test_fig11_cases () =
  let l = Figures.fig11 in
  let g = Bigraph.ugraph l.Figures.graph in
  List.iter
    (fun (first, others) ->
      match Figures.fig11_bad_terminals ~first with
      | None -> Alcotest.fail "case lookup failed"
      | Some p ->
        let order = ordering_starting_with l first others in
        check
          (Printf.sprintf "ordering starting with %s is not good" first)
          false
          (Good_ordering.is_good_for g ~order ~p))
    [
      ("A", []);
      ("B", []);
      ("1", []);
      ("2", []);
    ]

let test_fig11_random_orderings () =
  (* Theorem 6: whatever the ordering, one of the four case terminal
     sets defeats it. *)
  let l = Figures.fig11 in
  let g = Bigraph.ugraph l.Figures.graph in
  let rng = Workloads.Rng.make ~seed:11 in
  let specials = [ "A"; "B"; "1"; "2" ] in
  for _ = 1 to 25 do
    let order =
      Workloads.Rng.shuffle rng (Iset.elements (Ugraph.nodes g))
    in
    let first_special =
      List.find
        (fun v ->
          List.mem (Figures.name_of_index l v)
            specials)
        order
    in
    let name = Figures.name_of_index l first_special in
    match Figures.fig11_bad_terminals ~first:name with
    | None -> Alcotest.fail "special node lookup failed"
    | Some p ->
      check
        (Printf.sprintf "random ordering (first special %s) is not good" name)
        false
        (Good_ordering.is_good_for g ~order ~p)
  done

let () =
  Alcotest.run "paper-figures"
    [
      ( "fig1",
        [
          Alcotest.test_case "two interpretations" `Quick
            test_fig1_interpretations;
          Alcotest.test_case "graph shape" `Quick test_fig1_graph_shape;
        ] );
      ( "fig2",
        [ Alcotest.test_case "alpha duality failure" `Quick test_fig2_duality_failure ] );
      ( "fig3-4",
        [
          Alcotest.test_case "fig3a Berge" `Quick test_fig3a;
          Alcotest.test_case "fig3b gamma" `Quick test_fig3b;
          Alcotest.test_case "fig3c beta" `Quick test_fig3c;
          Alcotest.test_case "fig3c pseudo vs Steiner" `Quick
            test_fig3c_pseudo_vs_steiner;
        ] );
      ("fig5", [ Alcotest.test_case "corollary 2 strictness" `Quick test_fig5 ]);
      ("fig6", [ Alcotest.test_case "X3C gadget" `Quick test_fig6 ]);
      ("fig8", [ Alcotest.test_case "cover taxonomy" `Quick test_fig8 ]);
      ("fig9", [ Alcotest.test_case "CSPC reduction" `Quick test_fig9 ]);
      ("fig10", [ Alcotest.test_case "lemma 4 witness" `Quick test_fig10 ]);
      ( "fig11",
        [
          Alcotest.test_case "structure" `Quick test_fig11_structure;
          Alcotest.test_case "four proof cases" `Quick test_fig11_cases;
          Alcotest.test_case "random orderings" `Quick
            test_fig11_random_orderings;
        ] );
    ]
