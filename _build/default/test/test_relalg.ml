(* Tests for the relational mini-engine: operators, scheme hypergraphs,
   semijoin reducers and Yannakakis vs naive evaluation. *)

open Hypergraphs
open Relalg

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let r_emp =
  Relation.make ~attrs:[ "emp"; "dept" ]
    [
      [ "alice"; "toys" ];
      [ "bob"; "toys" ];
      [ "carol"; "books" ];
      [ "dave"; "games" ];
    ]

let r_dept =
  Relation.make ~attrs:[ "dept"; "floor" ]
    [ [ "toys"; "1" ]; [ "books"; "2" ] ]

let r_floor =
  Relation.make ~attrs:[ "floor"; "manager" ]
    [ [ "1"; "zoe" ]; [ "2"; "yann" ]; [ "3"; "xavier" ] ]

let db = Database.make [ ("emp", r_emp); ("dept", r_dept); ("floor", r_floor) ]

(* ---------------------------------------------------------- Relation *)

let test_relation_basics () =
  check_int "cardinality" 4 (Relation.cardinality r_emp);
  check_int "arity" 2 (Relation.arity r_emp);
  check "dedup" true
    (Relation.cardinality (Relation.make ~attrs:[ "a" ] [ [ "x" ]; [ "x" ] ]) = 1);
  check "value lookup" true
    (Relation.value r_dept [ "toys"; "1" ] "floor" = "1");
  check "duplicate attrs rejected" true
    (try
       ignore (Relation.make ~attrs:[ "a"; "a" ] []);
       false
     with Invalid_argument _ -> true);
  check "arity mismatch rejected" true
    (try
       ignore (Relation.make ~attrs:[ "a" ] [ [ "x"; "y" ] ]);
       false
     with Invalid_argument _ -> true);
  check "equal ignores column order" true
    (Relation.equal
       (Relation.make ~attrs:[ "a"; "b" ] [ [ "1"; "2" ] ])
       (Relation.make ~attrs:[ "b"; "a" ] [ [ "2"; "1" ] ]))

(* --------------------------------------------------------------- Ops *)

let test_project_select () =
  let p = Ops.project r_emp [ "dept" ] in
  check_int "projection dedups" 3 (Relation.cardinality p);
  let s = Ops.select_eq r_emp ~attr:"dept" ~value:"toys" in
  check_int "selection" 2 (Relation.cardinality s)

let test_join () =
  let j = Ops.natural_join r_emp r_dept in
  check_int "join cardinality" 3 (Relation.cardinality j);
  check "join attrs" true
    (List.sort compare (Relation.attrs j) = [ "dept"; "emp"; "floor" ]);
  (* Cartesian product when no shared attribute. *)
  let a = Relation.make ~attrs:[ "x" ] [ [ "1" ]; [ "2" ] ] in
  let b = Relation.make ~attrs:[ "y" ] [ [ "u" ]; [ "v" ]; [ "w" ] ] in
  check_int "cartesian" 6 (Relation.cardinality (Ops.natural_join a b));
  check "join commutes (as sets)" true
    (Relation.equal (Ops.natural_join r_emp r_dept) (Ops.natural_join r_dept r_emp))

let test_semijoin () =
  let s = Ops.semijoin r_emp r_dept in
  check_int "dangling dave removed" 3 (Relation.cardinality s);
  check "attrs unchanged" true (Relation.attrs s = Relation.attrs r_emp);
  (* Semijoin with disjoint attrs keeps everything iff right nonempty. *)
  let b = Relation.make ~attrs:[ "z" ] [ [ "q" ] ] in
  check_int "disjoint semijoin keeps" 4
    (Relation.cardinality (Ops.semijoin r_emp b));
  let empty = Relation.make ~attrs:[ "z" ] [] in
  check_int "empty right empties left" 0
    (Relation.cardinality (Ops.semijoin r_emp empty))

(* ----------------------------------------------------------- Database *)

let test_scheme_hypergraph () =
  let h = Database.scheme_hypergraph db in
  check_int "nodes = attributes" 4 (Hypergraph.n_nodes h);
  check_int "edges = relations" 3 (Hypergraph.n_edges h);
  check "chain schema is acyclic" true (Gyo.alpha_acyclic h)

(* --------------------------------------------------------- Yannakakis *)

let test_plan () =
  match Yannakakis.plan db with
  | Yannakakis.Acyclic jt -> check "join tree coherent" true (Join_tree.verify jt)
  | Yannakakis.Naive_fallback -> Alcotest.fail "chain schema is acyclic"

let test_full_reducer () =
  match Yannakakis.plan db with
  | Yannakakis.Naive_fallback -> Alcotest.fail "acyclic expected"
  | Yannakakis.Acyclic jt ->
    let reduced = Yannakakis.full_reducer db jt in
    (* Dangling tuples are gone: dave's dept has no floor; floor 3 has
       no dept. *)
    check_int "emp reduced" 3
      (Relation.cardinality (Database.relation reduced "emp"));
    check_int "floor reduced" 2
      (Relation.cardinality (Database.relation reduced "floor"))

let test_yannakakis_equals_naive () =
  let output = [ "emp"; "manager" ] in
  let y = Yannakakis.evaluate db ~output in
  let n = Yannakakis.evaluate_naive db ~output in
  check "same result" true (Relation.equal y n);
  check_int "three employees have managers" 3 (Relation.cardinality y)

let test_cyclic_fallback () =
  let ra = Relation.make ~attrs:[ "a"; "b" ] [ [ "1"; "2" ] ] in
  let rb = Relation.make ~attrs:[ "b"; "c" ] [ [ "2"; "3" ] ] in
  let rc = Relation.make ~attrs:[ "a"; "c" ] [ [ "1"; "3" ] ] in
  let cyc = Database.make [ ("ab", ra); ("bc", rb); ("ac", rc) ] in
  check "triangle scheme is cyclic" true (Yannakakis.plan cyc = Yannakakis.Naive_fallback);
  let out = Yannakakis.evaluate cyc ~output:[ "a"; "b"; "c" ] in
  check_int "still evaluates" 1 (Relation.cardinality out)

let test_unknown_output () =
  check "unknown attribute rejected" true
    (try
       ignore (Yannakakis.evaluate db ~output:[ "nope" ]);
       false
     with Invalid_argument _ -> true)

(* -------------------------------------------------------- Edge cases *)

let test_relalg_edge_cases () =
  let empty_r = Relation.make ~attrs:[ "a"; "b" ] [] in
  check_int "join with empty is empty" 0
    (Relation.cardinality (Ops.natural_join r_emp empty_r));
  check_int "project to nothing" 1
    (Relation.cardinality (Ops.project r_emp []));
  check_int "project empty relation to nothing" 0
    (Relation.cardinality (Ops.project empty_r []));
  check "empty selection" true
    (Relation.cardinality (Ops.select_eq r_emp ~attr:"dept" ~value:"zzz") = 0);
  check "join_all of nothing" true (Ops.join_all [] = None)

(* -------------------------------------------------------- properties *)

let qcheck_cases =
  let db_gen =
    QCheck2.Gen.(
      int_range 0 10000
      |> map (fun seed ->
             let rng = Workloads.Rng.make ~seed in
             (* Random acyclic schema over attributes a0..a7 with random
                small data. *)
             let h = Workloads.Gen_hyper.alpha_acyclic rng ~n_edges:4 ~max_size:3 in
             let attr i = Printf.sprintf "a%d" i in
             let rels =
               Array.to_list (Hypergraph.edges h)
               |> List.mapi (fun j e ->
                      let attrs = List.map attr (Graphs.Iset.elements e) in
                      let row _ =
                        List.map (fun _ -> string_of_int (Workloads.Rng.int rng 3)) attrs
                      in
                      ( Printf.sprintf "r%d" j,
                        Relation.make ~attrs (List.init 6 row) ))
             in
             Database.make rels))
  in
  [
    QCheck2.Test.make ~count:150
      ~name:"Yannakakis = naive join-project on random acyclic databases"
      db_gen (fun db ->
        let attrs = Database.attributes db in
        let output = List.filteri (fun i _ -> i mod 2 = 0) attrs in
        QCheck2.assume (output <> []);
        Relation.equal
          (Yannakakis.evaluate db ~output)
          (Yannakakis.evaluate_naive db ~output));
    QCheck2.Test.make ~count:150
      ~name:"full reducer never grows relations and preserves the join"
      db_gen (fun db ->
        match Yannakakis.plan db with
        | Yannakakis.Naive_fallback -> true
        | Yannakakis.Acyclic jt ->
          let reduced = Yannakakis.full_reducer db jt in
          List.for_all2
            (fun (_, r) (_, r') ->
              Relation.cardinality r' <= Relation.cardinality r)
            (Database.relations db)
            (Database.relations reduced)
          &&
          let output = Database.attributes db in
          Relation.equal
            (Yannakakis.evaluate_naive db ~output)
            (Yannakakis.evaluate_naive reduced ~output));
    QCheck2.Test.make ~count:100 ~name:"natural join is commutative (as sets)"
      db_gen (fun db ->
        match Database.relations db with
        | (_, r) :: (_, s) :: _ ->
          Relation.equal (Ops.natural_join r s) (Ops.natural_join s r)
        | _ -> true);
    QCheck2.Test.make ~count:100 ~name:"natural join is associative (as sets)"
      db_gen (fun db ->
        match Database.relations db with
        | (_, r) :: (_, s) :: (_, t) :: _ ->
          Relation.equal
            (Ops.natural_join (Ops.natural_join r s) t)
            (Ops.natural_join r (Ops.natural_join s t))
        | _ -> true);
    QCheck2.Test.make ~count:100
      ~name:"semijoin = projection of the join onto the left schema" db_gen
      (fun db ->
        match Database.relations db with
        | (_, r) :: (_, s) :: _ ->
          Relation.equal (Ops.semijoin r s)
            (Ops.project (Ops.natural_join r s) (Relation.attrs r))
        | _ -> true);
    QCheck2.Test.make ~count:100 ~name:"semijoin is idempotent" db_gen
      (fun db ->
        match Database.relations db with
        | (_, r) :: (_, s) :: _ ->
          let once = Ops.semijoin r s in
          Relation.equal once (Ops.semijoin once s)
        | _ -> true);
  ]

let () =
  Alcotest.run "relalg"
    [
      ("relation", [ Alcotest.test_case "basics" `Quick test_relation_basics ]);
      ( "ops",
        [
          Alcotest.test_case "project/select" `Quick test_project_select;
          Alcotest.test_case "natural join" `Quick test_join;
          Alcotest.test_case "semijoin" `Quick test_semijoin;
        ] );
      ( "database",
        [ Alcotest.test_case "scheme hypergraph" `Quick test_scheme_hypergraph ] );
      ( "yannakakis",
        [
          Alcotest.test_case "plan" `Quick test_plan;
          Alcotest.test_case "full reducer" `Quick test_full_reducer;
          Alcotest.test_case "equals naive" `Quick test_yannakakis_equals_naive;
          Alcotest.test_case "cyclic fallback" `Quick test_cyclic_fallback;
          Alcotest.test_case "unknown output" `Quick test_unknown_output;
        ] );
      ( "edge-cases",
        [ Alcotest.test_case "corner cases" `Quick test_relalg_edge_cases ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
