(* Tests for the text formats. *)

open Graphs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample_graph = {|
# a comment
bipartite
left  A B C
right r1 r2
edge  A r1
edge  B r1   # trailing comment
edge  B r2
edge  C r2
|}

let test_parse_bigraph () =
  match Mc_io.Parse.bigraph_of_string sample_graph with
  | Ok nb ->
    check_int "left" 3 (Array.length nb.Mc_io.Parse.left_names);
    check_int "right" 2 (Array.length nb.Mc_io.Parse.right_names);
    check_int "edges" 4 (Bipartite.Bigraph.m nb.Mc_io.Parse.graph);
    check "edge A-r1 present" true
      (Bipartite.Bigraph.mem_edge nb.Mc_io.Parse.graph 0 0)
  | Error e -> Alcotest.failf "parse error: %a" Mc_io.Parse.pp_error e

let test_round_trip () =
  match Mc_io.Parse.bigraph_of_string sample_graph with
  | Error _ -> Alcotest.fail "parse"
  | Ok nb -> (
    let printed = Mc_io.Parse.bigraph_to_string nb in
    match Mc_io.Parse.bigraph_of_string printed with
    | Ok nb2 ->
      check "round trip preserves the graph" true
        (Bipartite.Bigraph.equal nb.Mc_io.Parse.graph nb2.Mc_io.Parse.graph);
      check "names preserved" true
        (nb.Mc_io.Parse.left_names = nb2.Mc_io.Parse.left_names
        && nb.Mc_io.Parse.right_names = nb2.Mc_io.Parse.right_names)
    | Error e -> Alcotest.failf "reparse error: %a" Mc_io.Parse.pp_error e)

let expect_error text expected_substring =
  match Mc_io.Parse.bigraph_of_string text with
  | Ok _ -> Alcotest.failf "expected a parse error (%s)" expected_substring
  | Error e ->
    let msg = Format.asprintf "%a" Mc_io.Parse.pp_error e in
    let contains hay needle =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    check ("error mentions " ^ expected_substring) true
      (contains msg expected_substring)

let test_parse_errors () =
  expect_error "nonsense" "bipartite";
  expect_error "bipartite\nleft A\nright r\nedge B r" "unknown left node";
  expect_error "bipartite\nleft A\nright r\nedge A z" "unknown right node";
  expect_error "bipartite\nleft A A\nright r" "duplicate";
  expect_error "bipartite\nfoo bar" "unknown directive"

let test_name_set () =
  match Mc_io.Parse.bigraph_of_string sample_graph with
  | Error _ -> Alcotest.fail "parse"
  | Ok nb -> (
    (match Mc_io.Parse.name_set nb [ "A"; "r2" ] with
    | Ok s -> check_int "two nodes" 2 (Iset.cardinal s)
    | Error _ -> Alcotest.fail "known names");
    match Mc_io.Parse.name_set nb [ "A"; "zz" ] with
    | Error "zz" -> check "unknown reported" true true
    | _ -> Alcotest.fail "expected unknown name")

let test_parse_schema () =
  let text = {|
schema
relation works   emp dept
relation located dept floor
|} in
  match Mc_io.Parse.schema_of_string text with
  | Ok schema ->
    check_int "relations" 2
      (List.length (Datamodel.Schema.relation_names schema));
    check_int "attributes" 3 (List.length (Datamodel.Schema.attributes schema))
  | Error e -> Alcotest.failf "schema parse: %a" Mc_io.Parse.pp_error e

let test_parse_hypergraph () =
  let text = {|
hypergraph
nodes a b c d
edge e1 a b
edge e2 b c d
|} in
  match Mc_io.Parse.hypergraph_of_string text with
  | Ok (h, node_names, edge_names) ->
    check_int "nodes" 4 (Hypergraphs.Hypergraph.n_nodes h);
    check_int "edges" 2 (Hypergraphs.Hypergraph.n_edges h);
    check "names kept" true
      (node_names = [| "a"; "b"; "c"; "d" |] && edge_names = [| "e1"; "e2" |]);
    check "content" true
      (Iset.equal (Hypergraphs.Hypergraph.edge h 1) (Iset.of_list [ 1; 2; 3 ]))
  | Error e -> Alcotest.failf "hypergraph parse: %a" Mc_io.Parse.pp_error e

let test_parse_database () =
  let text = {|
database
relation works emp dept
row works alice toys
row works bob books
|} in
  (match Mc_io.Parse.database_of_string text with
  | Ok db ->
    check_int "one relation" 1 (List.length (Relalg.Database.names db));
    check_int "two rows" 2
      (Relalg.Relation.cardinality (Relalg.Database.relation db "works"))
  | Error e -> Alcotest.failf "database parse: %a" Mc_io.Parse.pp_error e);
  (match Mc_io.Parse.database_of_string "database
row ghost x" with
  | Error _ -> check "row for unknown relation rejected" true true
  | Ok _ -> Alcotest.fail "expected error");
  match Mc_io.Parse.database_of_string "database
relation r a b
row r x" with
  | Error _ -> check "arity mismatch rejected" true true
  | Ok _ -> Alcotest.fail "expected error"

let test_parse_query () =
  (match Mc_io.Parse.query_of_string "connect emp, manager" with
  | Ok (objs, []) ->
    check "two objects" true (List.sort compare objs = [ "emp"; "manager" ])
  | _ -> Alcotest.fail "plain connect");
  (match
     Mc_io.Parse.query_of_string
       "connect emp where dept = toys and floor = 1"
   with
  | Ok ([ "emp" ], where) ->
    check "two conditions" true
      (List.sort compare where = [ ("dept", "toys"); ("floor", "1") ])
  | _ -> Alcotest.fail "where clause");
  (match Mc_io.Parse.query_of_string "select * from t" with
  | Error _ -> check "non-connect rejected" true true
  | Ok _ -> Alcotest.fail "expected error");
  match Mc_io.Parse.query_of_string "connect a where b =" with
  | Error _ -> check "malformed condition rejected" true true
  | Ok _ -> Alcotest.fail "expected error"

let test_printer_round_trips () =
  (* Schema round trip. *)
  let schema =
    Datamodel.Schema.make [ ("works", [ "emp"; "dept" ]); ("loc", [ "dept"; "floor" ]) ]
  in
  (match Mc_io.Parse.schema_of_string (Mc_io.Parse.schema_to_string schema) with
  | Ok s2 ->
    check "schema survives" true
      (Datamodel.Schema.relation_names s2 = Datamodel.Schema.relation_names schema
      && Datamodel.Schema.attributes s2 = Datamodel.Schema.attributes schema)
  | Error e -> Alcotest.failf "schema reparse: %a" Mc_io.Parse.pp_error e);
  (* Hypergraph round trip. *)
  let h =
    Hypergraphs.Hypergraph.create ~n_nodes:3
      [ Iset.of_list [ 0; 1 ]; Iset.of_list [ 1; 2 ] ]
  in
  let text =
    Mc_io.Parse.hypergraph_to_string h ~node_names:[| "x"; "y"; "z" |]
      ~edge_names:[| "e"; "f" |]
  in
  (match Mc_io.Parse.hypergraph_of_string text with
  | Ok (h2, _, _) ->
    check "hypergraph survives" true (Hypergraphs.Hypergraph.equal_modulo_order h h2)
  | Error e -> Alcotest.failf "hypergraph reparse: %a" Mc_io.Parse.pp_error e);
  (* Database round trip. *)
  let db =
    Relalg.Database.make
      [ ("r", Relalg.Relation.make ~attrs:[ "a"; "b" ] [ [ "1"; "2" ]; [ "3"; "4" ] ]) ]
  in
  match Mc_io.Parse.database_of_string (Mc_io.Parse.database_to_string db) with
  | Ok db2 ->
    check "database survives" true
      (Relalg.Relation.equal (Relalg.Database.relation db "r")
         (Relalg.Database.relation db2 "r"))
  | Error e -> Alcotest.failf "database reparse: %a" Mc_io.Parse.pp_error e

let () =
  Alcotest.run "mc_io"
    [
      ( "parse",
        [
          Alcotest.test_case "bigraph" `Quick test_parse_bigraph;
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "name set" `Quick test_name_set;
          Alcotest.test_case "schema" `Quick test_parse_schema;
          Alcotest.test_case "hypergraph" `Quick test_parse_hypergraph;
          Alcotest.test_case "database" `Quick test_parse_database;
          Alcotest.test_case "query language" `Quick test_parse_query;
          Alcotest.test_case "printer round trips" `Quick test_printer_round_trips;
        ] );
    ]
