(* Unit and property tests for the graph substrate. *)

open Graphs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let petersen =
  (* Outer 5-cycle, inner pentagram, spokes. Girth 5, not chordal. *)
  Ugraph.of_edges ~n:10
    [
      (0, 1); (1, 2); (2, 3); (3, 4); (4, 0);
      (5, 7); (7, 9); (9, 6); (6, 8); (8, 5);
      (0, 5); (1, 6); (2, 7); (3, 8); (4, 9);
    ]

let path n = Ugraph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

(* ------------------------------------------------------------ Ugraph *)

let test_basics () =
  let g = Ugraph.of_edges ~n:4 [ (0, 1); (1, 2) ] in
  check_int "n" 4 (Ugraph.n g);
  check_int "m" 2 (Ugraph.m g);
  check "mem" true (Ugraph.mem_edge g 0 1);
  check "mem sym" true (Ugraph.mem_edge g 1 0);
  check "not mem" false (Ugraph.mem_edge g 0 2);
  let g = Ugraph.add_edge g 0 1 in
  check_int "idempotent add" 2 (Ugraph.m g);
  let g = Ugraph.remove_edge g 0 1 in
  check_int "remove" 1 (Ugraph.m g);
  check_int "degree after removal" 1 (Ugraph.degree g 1)

let test_rejects () =
  check "self-loop rejected" true
    (try
       ignore (Ugraph.of_edges ~n:3 [ (1, 1) ]);
       false
     with Invalid_argument _ -> true);
  check "out of range rejected" true
    (try
       ignore (Ugraph.of_edges ~n:3 [ (0, 3) ]);
       false
     with Invalid_argument _ -> true)

let test_private_neighbors () =
  (* Star: center 0, leaves 1..3; plus 3-4. *)
  let g = Ugraph.of_edges ~n:5 [ (0, 1); (0, 2); (0, 3); (3, 4) ] in
  let w = Iset.range 5 in
  let adj_star = Ugraph.private_neighbors g ~within:w 0 in
  check "1 and 2 are private to 0" true
    (Iset.mem 1 adj_star && Iset.mem 2 adj_star);
  check "3 is not private to 0 (sees 4)" false (Iset.mem 3 adj_star)

let test_induced () =
  let sub, ids = Ugraph.induced petersen (Iset.of_list [ 0; 1; 2; 5 ]) in
  check_int "induced nodes" 4 (Ugraph.n sub);
  check_int "induced edges (0-1, 1-2, 0-5)" 3 (Ugraph.m sub);
  check "id map is increasing" true (ids = [| 0; 1; 2; 5 |])

let test_complement () =
  let g = path 4 in
  let c = Ugraph.complement g in
  check_int "complement edge count" ((4 * 3 / 2) - 3) (Ugraph.m c);
  check "complement disjoint" true
    (Ugraph.fold_edges (fun u v acc -> acc && not (Ugraph.mem_edge g u v)) c true)

(* ---------------------------------------------------------- Traverse *)

let test_bfs_distances () =
  let d = Traverse.bfs (path 5) 0 in
  check "distances along the path" true (d = [| 0; 1; 2; 3; 4 |])

let test_within_respected () =
  let g = path 5 in
  let within = Iset.of_list [ 0; 1; 3; 4 ] in
  check "cut vertex removal disconnects" false
    (Traverse.is_connected ~within g);
  check "components count" true
    (List.length (Traverse.components ~within g) = 2);
  check "connects fails across the cut" false
    (Traverse.connects ~within g (Iset.of_list [ 0; 4 ]))

let test_component_containing () =
  let g = Ugraph.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
  (match Traverse.component_containing g (Iset.of_list [ 0; 2 ]) with
  | Some c ->
    check "component of {0,2}" true (Iset.equal c (Iset.of_list [ 0; 1; 2 ]))
  | None -> Alcotest.fail "expected a component");
  check "straddling terminals have no component" true
    (Traverse.component_containing g (Iset.of_list [ 0; 3 ]) = None)

let test_shortest_path () =
  match Traverse.shortest_path petersen 0 9 with
  | Some p ->
    check_int "path length 0..9" 3 (List.length p);
    check "endpoints" true
      (List.hd p = 0 && List.nth p (List.length p - 1) = 9)
  | None -> Alcotest.fail "petersen is connected"

(* ---------------------------------------------------------- Spanning *)

let test_spanning_tree () =
  (match Spanning.spanning_tree petersen with
  | Some es ->
    check_int "spanning tree edges" 9 (List.length es);
    check "verifies" true
      (Spanning.tree_check petersen ~over:(Ugraph.nodes petersen) es)
  | None -> Alcotest.fail "petersen is connected");
  check "disconnected graph has no spanning tree" true
    (Spanning.spanning_tree (Ugraph.create 3) = None);
  check "is_tree on a path" true (Spanning.is_tree (path 4));
  check "is_tree rejects a cycle" false
    (Spanning.is_tree (Workloads.Gen_graph.cycle 4))

let test_tree_check_rejects () =
  let g = path 4 in
  check "wrong node set rejected" false
    (Spanning.tree_check g ~over:(Iset.of_list [ 0; 1; 2; 3 ]) [ (0, 1); (1, 2) ]);
  check "non-edges rejected" false
    (Spanning.tree_check g ~over:(Iset.of_list [ 0; 2 ]) [ (0, 2) ])

(* ------------------------------------------------------------ Cycles *)

let test_acyclicity () =
  check "path acyclic" true (Cycles.is_acyclic (path 6));
  check "petersen cyclic" false (Cycles.is_acyclic petersen);
  check "find_cycle on tree" true (Cycles.find_cycle (path 6) = None);
  match Cycles.find_cycle petersen with
  | Some c -> check "cycle length >= girth" true (List.length c >= 5)
  | None -> Alcotest.fail "petersen has cycles"

let test_cycle_enumeration () =
  let c4 = Workloads.Gen_graph.cycle 4 in
  check_int "C4 has one cycle" 1 (List.length (Cycles.simple_cycles c4));
  let k4 =
    Ugraph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
  in
  (* K4: 4 triangles + 3 four-cycles. *)
  check_int "K4 cycle count" 7 (List.length (Cycles.simple_cycles k4));
  check_int "K4 triangles" 4 (List.length (Cycles.simple_cycles ~max_len:3 k4));
  check_int "petersen girth" 5
    (match Cycles.girth petersen with Some g -> g | None -> -1)

let test_chords () =
  let c5_with_chord = Ugraph.add_edge (Workloads.Gen_graph.cycle 5) 0 2 in
  let cyc = [ 0; 1; 2; 3; 4 ] in
  check "chord found" true (Cycles.chords c5_with_chord cyc = [ (0, 2) ]);
  check "chordless cycle detector" true
    (Cycles.exists_cycle_with_few_chords (Workloads.Gen_graph.cycle 6)
       ~min_len:6 ~max_chords:0);
  check "fully chorded is fine" false
    (Cycles.exists_cycle_with_few_chords c5_with_chord ~min_len:5 ~max_chords:0)

(* ----------------------------------------------------------- Cliques *)

let test_cliques () =
  let k4_plus =
    Ugraph.of_edges ~n:5
      [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3); (3, 4) ]
  in
  let cliques = Cliques.maximal_cliques k4_plus in
  check_int "two maximal cliques" 2 (List.length cliques);
  check_int "max clique size" 4 (Cliques.max_clique_size k4_plus);
  check "K4 is one of them" true
    (List.exists (fun c -> Iset.equal c (Iset.of_list [ 0; 1; 2; 3 ])) cliques)

(* ---------------------------------------------------- LexBFS/Chordal *)

let test_chordal_basic () =
  check "tree is chordal" true (Chordal.is_chordal (path 6));
  check "C4 is not chordal" false
    (Chordal.is_chordal (Workloads.Gen_graph.cycle 4));
  check "C6 is not chordal" false
    (Chordal.is_chordal (Workloads.Gen_graph.cycle 6));
  check "petersen not chordal" false (Chordal.is_chordal petersen);
  let k4 =
    Ugraph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
  in
  check "K4 chordal" true (Chordal.is_chordal k4)

let test_peo_validity () =
  let g =
    Workloads.Gen_graph.random_chordal
      (Workloads.Rng.make ~seed:1)
      ~n:20 ~max_clique:4
  in
  match Chordal.perfect_elimination_order g with
  | Some order ->
    check "returned PEO verifies" true
      (Chordal.is_perfect_elimination_order g order)
  | None -> Alcotest.fail "random_chordal must be chordal"

let test_simplicial () =
  let k3_tail = Ugraph.of_edges ~n:4 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  let s = Chordal.simplicial_nodes k3_tail in
  check "0,1,3 simplicial; 2 not" true
    (Iset.equal s (Iset.of_list [ 0; 1; 3 ]))

(* -------------------------------------------------- Strongly chordal *)

let test_strongly_chordal_basics () =
  check "path strongly chordal" true (Strongly_chordal.is_strongly_chordal (path 6));
  let k4 =
    Ugraph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
  in
  check "complete graph strongly chordal" true
    (Strongly_chordal.is_strongly_chordal k4);
  check "C6 is not (not even chordal)" false
    (Strongly_chordal.is_strongly_chordal (Workloads.Gen_graph.cycle 6))

let test_sun () =
  let s3 = Strongly_chordal.sun 3 in
  check "3-sun is chordal" true (Chordal.is_chordal s3);
  check "3-sun is not strongly chordal" false
    (Strongly_chordal.is_strongly_chordal s3);
  check "3-sun brute agrees" false (Strongly_chordal.is_strongly_chordal_brute s3);
  let s4 = Strongly_chordal.sun 4 in
  check "4-sun is not strongly chordal" false
    (Strongly_chordal.is_strongly_chordal s4);
  check "4-sun not chordal (C4 on rim alternations has no chord)" true
    (Chordal.is_chordal s4 = Chordal.is_chordal_brute s4)

let test_simple_vertices () =
  let g = path 4 in
  let within = Ugraph.nodes g in
  check "path endpoint is simple" true
    (Strongly_chordal.is_simple_vertex g ~within 0);
  let s3 = Strongly_chordal.sun 3 in
  check "sun rim vertex is not simple" false
    (Strongly_chordal.is_simple_vertex s3 ~within:(Ugraph.nodes s3) 0)

(* ------------------------------------------------------------- DOT *)

let test_dot () =
  let s = Dot.of_ugraph ~name:"t" (path 3) in
  check "mentions edges" true
    (String.length s > 0
    && String.split_on_char '\n' s
       |> List.exists (fun l -> l = "  n0 -- n1;"))

(* -------------------------------------------------------- properties *)

let qcheck_cases =
  let gen_graph =
    QCheck2.Gen.(
      pair (int_range 1 10) (int_range 0 100)
      |> map (fun (n, seed) ->
             let rng = Workloads.Rng.make ~seed in
             Workloads.Gen_graph.gnp rng ~n ~p:0.35))
  in
  [
    QCheck2.Test.make ~count:150 ~name:"LexBFS order is a permutation"
      gen_graph (fun g ->
        let order = Lexbfs.lexbfs_order g in
        List.sort_uniq compare order = Iset.elements (Ugraph.nodes g));
    QCheck2.Test.make ~count:150 ~name:"MCS order is a permutation" gen_graph
      (fun g ->
        let order = Lexbfs.mcs_order g in
        List.sort_uniq compare order = Iset.elements (Ugraph.nodes g));
    QCheck2.Test.make ~count:150
      ~name:"partition-refinement LexBFS is a permutation and sound"
      gen_graph (fun g ->
        let order = Lexbfs.lexbfs_partition_order g in
        List.sort_uniq compare order = Iset.elements (Ugraph.nodes g)
        &&
        (* Its reversal is a PEO exactly on chordal graphs. *)
        Chordal.is_perfect_elimination_order g (List.rev order)
        = Chordal.is_chordal_brute g);
    QCheck2.Test.make ~count:120
      ~name:"LexBFS chordality test agrees with brute force" gen_graph
      (fun g -> Chordal.is_chordal g = Chordal.is_chordal_brute g);
    QCheck2.Test.make ~count:120 ~name:"random_chordal really is chordal"
      QCheck2.Gen.(int_range 0 1000)
      (fun seed ->
        let rng = Workloads.Rng.make ~seed in
        let g = Workloads.Gen_graph.random_chordal rng ~n:14 ~max_clique:4 in
        Chordal.is_chordal g && Chordal.is_chordal_brute g);
    QCheck2.Test.make ~count:150 ~name:"spanning forest spans components"
      gen_graph (fun g ->
        let comps = Traverse.components g in
        let edges = Spanning.spanning_forest g in
        List.length edges = Ugraph.n g - List.length comps);
    QCheck2.Test.make ~count:100
      ~name:"girth matches shortest enumerated cycle" gen_graph (fun g ->
        match Cycles.girth g with
        | None -> Cycles.simple_cycles g = []
        | Some k ->
          let lens = List.map List.length (Cycles.simple_cycles g) in
          List.fold_left min max_int lens = k);
    QCheck2.Test.make ~count:100 ~name:"BFS distance = shortest path length"
      gen_graph (fun g ->
        let n = Ugraph.n g in
        let s = 0 in
        let d = Traverse.bfs g s in
        List.for_all
          (fun t ->
            match Traverse.shortest_path g s t with
            | None -> d.(t) = -1
            | Some p -> d.(t) = List.length p - 1)
          (List.init n (fun i -> i)));
    QCheck2.Test.make ~count:150
      ~name:"strongly chordal: elimination = definitional oracle" gen_graph
      (fun g ->
        Strongly_chordal.is_strongly_chordal g
        = Strongly_chordal.is_strongly_chordal_brute g);
    QCheck2.Test.make ~count:150
      ~name:"strongly chordal => chordal" gen_graph (fun g ->
        QCheck2.assume (Strongly_chordal.is_strongly_chordal g);
        Chordal.is_chordal g);
    QCheck2.Test.make ~count:100
      ~name:"maximal cliques are maximal and cover all edges" gen_graph
      (fun g ->
        let cliques = Cliques.maximal_cliques g in
        List.for_all (fun c -> Ugraph.is_clique g c) cliques
        && Ugraph.fold_edges
             (fun u v acc ->
               acc
               && List.exists
                    (fun c -> Iset.mem u c && Iset.mem v c)
                    cliques)
             g true);
  ]

let () =
  Alcotest.run "graphs"
    [
      ( "ugraph",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "rejects" `Quick test_rejects;
          Alcotest.test_case "private neighbors" `Quick test_private_neighbors;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "complement" `Quick test_complement;
        ] );
      ( "traverse",
        [
          Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
          Alcotest.test_case "within respected" `Quick test_within_respected;
          Alcotest.test_case "component containing" `Quick
            test_component_containing;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
        ] );
      ( "spanning",
        [
          Alcotest.test_case "spanning tree" `Quick test_spanning_tree;
          Alcotest.test_case "tree_check rejects" `Quick test_tree_check_rejects;
        ] );
      ( "cycles",
        [
          Alcotest.test_case "acyclicity" `Quick test_acyclicity;
          Alcotest.test_case "enumeration" `Quick test_cycle_enumeration;
          Alcotest.test_case "chords" `Quick test_chords;
        ] );
      ("cliques", [ Alcotest.test_case "maximal cliques" `Quick test_cliques ]);
      ( "chordal",
        [
          Alcotest.test_case "basics" `Quick test_chordal_basic;
          Alcotest.test_case "PEO validity" `Quick test_peo_validity;
          Alcotest.test_case "simplicial nodes" `Quick test_simplicial;
        ] );
      ( "strongly-chordal",
        [
          Alcotest.test_case "basics" `Quick test_strongly_chordal_basics;
          Alcotest.test_case "suns" `Quick test_sun;
          Alcotest.test_case "simple vertices" `Quick test_simple_vertices;
        ] );
      ("dot", [ Alcotest.test_case "export" `Quick test_dot ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
