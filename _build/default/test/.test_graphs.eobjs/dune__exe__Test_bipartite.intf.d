test/test_bipartite.mli:
