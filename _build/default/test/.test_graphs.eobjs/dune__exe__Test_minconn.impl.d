test/test_minconn.ml: Alcotest Minconn String
