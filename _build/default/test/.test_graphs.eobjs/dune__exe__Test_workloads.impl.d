test/test_workloads.ml: Alcotest Array Bipartite Datamodel Graphs Hypergraphs Iset List Relalg Steiner Traverse Ugraph Workloads
