test/test_relalg.ml: Alcotest Array Database Graphs Gyo Hypergraph Hypergraphs Join_tree List Ops Printf QCheck2 QCheck_alcotest Relalg Relation Workloads Yannakakis
