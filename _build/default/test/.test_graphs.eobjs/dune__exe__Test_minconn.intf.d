test/test_minconn.mli:
