test/test_mc_io.mli:
