test/test_hypergraphs.mli:
