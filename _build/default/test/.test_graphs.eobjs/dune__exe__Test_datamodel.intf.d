test/test_datamodel.mli:
