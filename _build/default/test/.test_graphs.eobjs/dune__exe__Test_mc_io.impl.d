test/test_mc_io.ml: Alcotest Array Bipartite Datamodel Format Graphs Hypergraphs Iset List Mc_io Relalg String
