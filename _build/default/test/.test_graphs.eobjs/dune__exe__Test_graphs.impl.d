test/test_graphs.ml: Alcotest Array Chordal Cliques Cycles Dot Graphs Iset Lexbfs List QCheck2 QCheck_alcotest Spanning String Strongly_chordal Traverse Ugraph Workloads
