(* Tests for the bipartite layer: the Definition 2 correspondence and,
   crucially, the Theorem 1 equivalences checked on random graphs by
   comparing the hypergraph-side fast recognisers against literal
   brute-force readings of Definitions 4 and 5. *)

open Graphs
open Hypergraphs
open Bipartite

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_bipartite_gen =
  QCheck2.Gen.(
    tup3 (int_range 1 5) (int_range 1 4) (int_range 0 100000)
    |> map (fun (nl, nr, seed) ->
           let rng = Workloads.Rng.make ~seed in
           Workloads.Gen_bipartite.gnp rng ~nl ~nr ~p:0.5))

(* Reject graphs with isolated right nodes: Definition 2's hypergraph
   is only defined there, and the paper's schemes never have empty
   relations. *)
let no_isolated_right g =
  List.for_all
    (fun j -> not (Iset.is_empty (Bigraph.left_neighbors g j)))
    (List.init (Bigraph.nr g) (fun j -> j))

(* ----------------------------------------------------------- Bigraph *)

let test_bigraph_basics () =
  let g = Bigraph.of_edges ~nl:2 ~nr:3 [ (0, 0); (0, 1); (1, 2) ] in
  check_int "nl" 2 (Bigraph.nl g);
  check_int "nr" 3 (Bigraph.nr g);
  check_int "m" 3 (Bigraph.m g);
  check "mem" true (Bigraph.mem_edge g 0 1);
  check "right neighbors of left 0" true
    (Iset.equal (Bigraph.right_neighbors g 0) (Iset.of_list [ 0; 1 ]));
  check "left neighbors of right 2" true
    (Iset.equal (Bigraph.left_neighbors g 2) (Iset.singleton 1));
  check "index round trip" true
    (Bigraph.node_of_index g (Bigraph.index g (Bigraph.R 1)) = Bigraph.R 1)

let test_flip () =
  let g = Bigraph.of_edges ~nl:2 ~nr:3 [ (0, 0); (1, 2) ] in
  let f = Bigraph.flip g in
  check_int "flip nl" 3 (Bigraph.nl f);
  check_int "flip nr" 2 (Bigraph.nr f);
  check "edges flipped" true (Bigraph.mem_edge f 0 0 && Bigraph.mem_edge f 2 1);
  check "double flip is identity" true (Bigraph.equal g (Bigraph.flip f))

let test_of_ugraph () =
  let c4 = Workloads.Gen_graph.cycle 4 in
  (match Bigraph.of_ugraph c4 with
  | Some (g, _) ->
    check_int "C4 splits 2+2" 2 (Bigraph.nl g);
    check_int "edges preserved" 4 (Bigraph.m g)
  | None -> Alcotest.fail "C4 is bipartite");
  check "odd cycle rejected" true
    (Bigraph.of_ugraph (Workloads.Gen_graph.cycle 5) = None)

(* -------------------------------------------------------- Correspond *)

let test_h1_h2 () =
  let g = Datamodel.Figures.fig2.Datamodel.Figures.graph in
  let h1 = Correspond.h1_exn g in
  check_int "H1 nodes = |V1|" (Bigraph.nl g) (Hypergraph.n_nodes h1);
  check_int "H1 edges = |V2|" (Bigraph.nr g) (Hypergraph.n_edges h1);
  check "round trip" true (Correspond.round_trip_h1 g);
  let g_iso = Bigraph.of_edges ~nl:1 ~nr:2 [ (0, 0) ] in
  check "isolated right node raises" true
    (try
       ignore (Correspond.h1_exn g_iso);
       false
     with Invalid_argument _ -> true);
  let h, mapping = Correspond.h1 g_iso in
  check_int "lenient h1 drops it" 1 (Hypergraph.n_edges h);
  check "mapping points at the surviving right node" true (mapping = [| 0 |])

(* ------------------------------------------------- Theorem 1, fixed *)

let test_41_is_forest () =
  let tree = Workloads.Gen_bipartite.forest (Workloads.Rng.make ~seed:3) ~n:12 in
  check "random tree is (4,1)-chordal" true (Mn_chordality.is_41_chordal tree);
  check "its H1 is Berge-acyclic" true
    (Berge.acyclic (fst (Correspond.h1 tree)))

let test_61_three_ways () =
  let cases =
    [
      Datamodel.Figures.fig3a.Datamodel.Figures.graph;
      Datamodel.Figures.fig3b.Datamodel.Figures.graph;
      Datamodel.Figures.fig3c.Datamodel.Figures.graph;
      Datamodel.Figures.fig5.Datamodel.Figures.graph;
      Datamodel.Figures.fig10.Datamodel.Figures.graph;
      Datamodel.Figures.fig11.Datamodel.Figures.graph;
    ]
  in
  List.iter
    (fun g ->
      let a = Mn_chordality.is_61_chordal g in
      let b = Mn_chordality.is_61_chordal_bisimplicial g in
      let c = Mn_chordality.is_mn_chordal_brute g ~m:6 ~n:1 in
      let d = Doubly_lex.is_61_chordal_doubly_lex g in
      check "beta = bisimplicial = brute = doubly-lex" true
        (a = b && b = c && c = d))
    cases

(* ---------------------------------------------------------- Classify *)

let test_profile_fig3b () =
  let p = Classify.profile Datamodel.Figures.fig3b.Datamodel.Figures.graph in
  check "62" true p.Classify.chordal_62;
  check "61 follows" true p.Classify.chordal_61;
  check "not 41" false p.Classify.chordal_41;
  check "consistent" true (Classify.theorem1_consistent p);
  check "recommend Algorithm 2" true
    (Classify.recommend p = Classify.Steiner_polynomial)

let test_profile_fig2 () =
  let p = Classify.profile Datamodel.Figures.fig2.Datamodel.Figures.graph in
  check "alpha_h1" true p.Classify.alpha_h1;
  check "not alpha_h2" false p.Classify.alpha_h2;
  check "recommend pseudo-Steiner V2" true
    (Classify.recommend p = Classify.Pseudo_steiner_v2)

let test_profile_gnp_cyclic () =
  let rng = Workloads.Rng.make ~seed:99 in
  (* Dense bipartite graphs are essentially never alpha-acyclic on
     either side; find one such and check the fallback. *)
  let rec find tries =
    if tries = 0 then None
    else
      let g = Workloads.Gen_bipartite.gnp rng ~nl:6 ~nr:6 ~p:0.5 in
      let p = Classify.profile g in
      if Classify.recommend p = Classify.Exact_search_only then Some p
      else find (tries - 1)
  in
  match find 50 with
  | Some p -> check "consistent profile" true (Classify.theorem1_consistent p)
  | None -> Alcotest.fail "expected some unstructured graph"

(* ------------------------------------------------------- properties *)

let qcheck_cases =
  [
    QCheck2.Test.make ~count:250
      ~name:"Theorem 1(i): (4,1)-brute = forest = Berge(H1)"
      small_bipartite_gen (fun g ->
        QCheck2.assume (no_isolated_right g);
        let brute = Mn_chordality.is_mn_chordal_brute g ~m:4 ~n:1 in
        brute = Mn_chordality.is_41_chordal g
        && brute = Berge.acyclic (Correspond.h1_exn g));
    QCheck2.Test.make ~count:250
      ~name:"Theorem 1(ii): (6,2)-brute = gamma(H1)" small_bipartite_gen
      (fun g ->
        QCheck2.assume (no_isolated_right g);
        Mn_chordality.is_mn_chordal_brute g ~m:6 ~n:2
        = Gamma.acyclic (Correspond.h1_exn g));
    QCheck2.Test.make ~count:250
      ~name:"Theorem 1(iii): (6,1)-brute = beta(H1)" small_bipartite_gen
      (fun g ->
        QCheck2.assume (no_isolated_right g);
        Mn_chordality.is_mn_chordal_brute g ~m:6 ~n:1
        = Beta.acyclic (Correspond.h1_exn g));
    QCheck2.Test.make ~count:250
      ~name:"doubly lexical ordering converges and verifies"
      small_bipartite_gen (fun g ->
        let o = Doubly_lex.ordering g in
        o.Doubly_lex.converged
        && Doubly_lex.is_doubly_lexical g ~rows:o.Doubly_lex.rows
             ~cols:o.Doubly_lex.cols);
    QCheck2.Test.make ~count:250
      ~name:"(6,1) via doubly lexical / gamma-free matrix agrees"
      small_bipartite_gen (fun g ->
        Doubly_lex.is_61_chordal_doubly_lex g
        = Mn_chordality.is_mn_chordal_brute g ~m:6 ~n:1);
    QCheck2.Test.make ~count:250
      ~name:"(6,1) via bisimplicial elimination agrees" small_bipartite_gen
      (fun g ->
        Mn_chordality.is_61_chordal_bisimplicial g
        = Mn_chordality.is_mn_chordal_brute g ~m:6 ~n:1);
    QCheck2.Test.make ~count:200
      ~name:"Definition 5 chordality brute = 2-section chordality"
      small_bipartite_gen (fun g ->
        QCheck2.assume (no_isolated_right g);
        Side_properties.chordal_brute g Bigraph.V2
        = Side_properties.chordal g Bigraph.V2);
    QCheck2.Test.make ~count:200
      ~name:"Definition 5 conformity brute = Gilmore on H1"
      small_bipartite_gen (fun g ->
        QCheck2.assume (no_isolated_right g);
        Side_properties.conformal_brute g Bigraph.V2
        = Side_properties.conformal g Bigraph.V2);
    QCheck2.Test.make ~count:150
      ~name:"Definition 5 brute checks agree on the V1 side too"
      small_bipartite_gen (fun g ->
        QCheck2.assume
          (List.for_all
             (fun i -> not (Iset.is_empty (Bigraph.right_neighbors g i)))
             (List.init (Bigraph.nl g) (fun i -> i)));
        Side_properties.chordal_brute g Bigraph.V1
        = Side_properties.chordal g Bigraph.V1
        && Side_properties.conformal_brute g Bigraph.V1
           = Side_properties.conformal g Bigraph.V1);
    QCheck2.Test.make ~count:200
      ~name:"Theorem 1(v): V2-chordal + V2-conformal = alpha(H1)"
      small_bipartite_gen (fun g ->
        QCheck2.assume (no_isolated_right g);
        (Side_properties.chordal g Bigraph.V2
        && Side_properties.conformal g Bigraph.V2)
        = Gyo.alpha_acyclic (Correspond.h1_exn g));
    QCheck2.Test.make ~count:200
      ~name:"Theorem 1(iv): same statements through H2 on the flip"
      small_bipartite_gen (fun g ->
        QCheck2.assume (no_isolated_right g);
        let flipped = Bigraph.flip g in
        QCheck2.assume
          (List.for_all
             (fun j -> not (Iset.is_empty (Bigraph.left_neighbors flipped j)))
             (List.init (Bigraph.nr flipped) (fun j -> j)));
        let h2 = Correspond.h2_exn g in
        Beta.acyclic h2 = Mn_chordality.is_mn_chordal_brute flipped ~m:6 ~n:1
        && Gamma.acyclic h2
           = Mn_chordality.is_mn_chordal_brute flipped ~m:6 ~n:2);
    QCheck2.Test.make ~count:200
      ~name:"H2 is the dual of H1 (Definition 3)" small_bipartite_gen
      (fun g ->
        QCheck2.assume (no_isolated_right g);
        (* Isolated left nodes would make H1 not cover its universe;
           dual then shrinks. Skip those. *)
        QCheck2.assume
          (List.for_all
             (fun i -> not (Iset.is_empty (Bigraph.right_neighbors g i)))
             (List.init (Bigraph.nl g) (fun i -> i)));
        Hypergraph.equal_modulo_order (Correspond.h2_exn g)
          (Hypergraph.dual (Correspond.h1_exn g)));
    QCheck2.Test.make ~count:150
      ~name:"Corollary 2: (6,1)-chordal => both sides chordal+conformal"
      small_bipartite_gen (fun g ->
        QCheck2.assume (no_isolated_right g);
        QCheck2.assume (Mn_chordality.is_61_chordal g);
        Side_properties.alpha_side g Bigraph.V1
        && Side_properties.alpha_side g Bigraph.V2);
    QCheck2.Test.make ~count:150 ~name:"full profile is Theorem-1 consistent"
      small_bipartite_gen (fun g ->
        Classify.theorem1_consistent (Classify.profile g));
    QCheck2.Test.make ~count:150
      ~name:"generated (6,2) bipartite instances are (6,2)"
      QCheck2.Gen.(int_range 0 5000)
      (fun seed ->
        let rng = Workloads.Rng.make ~seed in
        let g = Workloads.Gen_bipartite.chordal_62 rng ~n_right:5 ~max_size:3 in
        Mn_chordality.is_62_chordal g
        && Mn_chordality.is_mn_chordal_brute g ~m:6 ~n:2);
  ]

let () =
  Alcotest.run "bipartite"
    [
      ( "bigraph",
        [
          Alcotest.test_case "basics" `Quick test_bigraph_basics;
          Alcotest.test_case "flip" `Quick test_flip;
          Alcotest.test_case "of_ugraph" `Quick test_of_ugraph;
        ] );
      ("correspond", [ Alcotest.test_case "h1/h2" `Quick test_h1_h2 ]);
      ( "theorem1-fixed",
        [
          Alcotest.test_case "(4,1) forest" `Quick test_41_is_forest;
          Alcotest.test_case "(6,1) three ways" `Quick test_61_three_ways;
        ] );
      ( "classify",
        [
          Alcotest.test_case "fig3b profile" `Quick test_profile_fig3b;
          Alcotest.test_case "fig2 profile" `Quick test_profile_fig2;
          Alcotest.test_case "unstructured fallback" `Quick
            test_profile_gnp_cyclic;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
