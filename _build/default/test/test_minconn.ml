(* Tests for the facade library. *)

let check = Alcotest.(check bool)

let test_forest_dispatch () =
  let g = Minconn.Figures.fig3a.Minconn.Figures.graph in
  match Minconn.solve_steiner g ~p:(Minconn.Iset.of_list [ 0; 3 ]) with
  | Some s ->
    check "fig3a routed to the forest solver" true
      (s.Minconn.method_used = Minconn.Used_forest);
    check "optimal" true s.Minconn.optimal
  | None -> Alcotest.fail "solvable"

let test_solve_dispatch () =
  let fig3b = Minconn.Figures.fig3b.Minconn.Figures.graph in
  let p = Minconn.Iset.of_list [ 0; 2 ] in
  (match Minconn.solve_steiner fig3b ~p with
  | Some s ->
    check "fig3b routed to Algorithm 2" true
      (s.Minconn.method_used = Minconn.Used_algorithm2);
    check "optimal" true s.Minconn.optimal
  | None -> Alcotest.fail "solvable");
  let fig2 = Minconn.Figures.fig2.Minconn.Figures.graph in
  match Minconn.solve_steiner fig2 ~p with
  | Some s ->
    check "fig2 routed to exact DP" true
      (s.Minconn.method_used = Minconn.Used_exact_dp)
  | None -> Alcotest.fail "solvable"

let test_solve_disconnected () =
  let g = Minconn.Bigraph.of_edges ~nl:2 ~nr:2 [ (0, 0); (1, 1) ] in
  check "disconnected returns None" true
    (Minconn.solve_steiner g ~p:(Minconn.Iset.of_list [ 0; 1 ]) = None)

let test_min_relations_facade () =
  let fig2 = Minconn.Figures.fig2.Minconn.Figures.graph in
  match Minconn.solve_min_relations fig2 ~p:(Minconn.Iset.of_list [ 0; 1 ]) with
  | Ok r -> check "v2 count positive" true (r.Minconn.Algorithm1.v2_count >= 1)
  | Error _ -> Alcotest.fail "fig2 H1 alpha-acyclic"

let test_report () =
  let s = Minconn.report Minconn.Figures.fig3b.Minconn.Figures.graph in
  check "report mentions Algorithm 2" true
    (String.length s > 0
    &&
    let contains hay needle =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    contains s "Algorithm 2")

let () =
  Alcotest.run "minconn"
    [
      ( "facade",
        [
          Alcotest.test_case "dispatch" `Quick test_solve_dispatch;
          Alcotest.test_case "forest dispatch" `Quick test_forest_dispatch;
          Alcotest.test_case "disconnected" `Quick test_solve_disconnected;
          Alcotest.test_case "min relations" `Quick test_min_relations_facade;
          Alcotest.test_case "report" `Quick test_report;
        ] );
    ]
