(* Unit and property tests for the hypergraph substrate: GYO, MCS, join
   trees, the four acyclicity degrees and conformality — each efficient
   recogniser cross-checked against an independent definitional
   oracle. *)

open Graphs
open Hypergraphs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let h_of lists ~n =
  Hypergraph.create ~n_nodes:n (List.map Iset.of_list lists)

(* The classic examples. *)
let triangle = h_of ~n:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ]
let triangle_covered = h_of ~n:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ]; [ 0; 1; 2 ] ]
let chain = h_of ~n:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ]
let flower = Workloads.Gen_hyper.beta_flower (Workloads.Rng.make ~seed:0) ~petals:3

(* ------------------------------------------------------- Hypergraph *)

let test_construction () =
  check_int "nodes" 3 (Hypergraph.n_nodes triangle);
  check_int "edges" 3 (Hypergraph.n_edges triangle);
  check_int "total size" 6 (Hypergraph.total_size triangle);
  check "empty edge rejected" true
    (try
       ignore (Hypergraph.create ~n_nodes:2 [ Iset.empty ]);
       false
     with Invalid_argument _ -> true);
  check "incident" true
    (Iset.equal (Hypergraph.incident triangle 1) (Iset.of_list [ 0; 1 ]))

let test_dual_involution () =
  (* For a hypergraph without isolated nodes and duplicate-free dual,
     dual (dual h) has the same structure as h. *)
  let dd = Hypergraph.dual (Hypergraph.dual triangle) in
  check "dual of dual of the triangle" true
    (Hypergraph.equal_modulo_order dd triangle)

let test_two_section () =
  let g = Hypergraph.two_section triangle_covered in
  check_int "K3" 3 (Ugraph.m g);
  check "clique" true (Ugraph.is_clique g (Iset.range 3))

let test_restrict_and_reduce () =
  let r = Hypergraph.restrict triangle_covered (Iset.of_list [ 0; 1 ]) in
  check_int "restrict keeps nonempty intersections" 4 (Hypergraph.n_edges r);
  let red = Hypergraph.reduce triangle_covered in
  check_int "reduce keeps only the big edge" 1 (Hypergraph.n_edges red);
  let dup = h_of ~n:2 [ [ 0; 1 ]; [ 0; 1 ] ] in
  check_int "reduce collapses duplicates" 1
    (Hypergraph.n_edges (Hypergraph.reduce dup))

let test_incidence_graph () =
  let g, offset = Hypergraph.incidence_graph chain in
  check_int "offset" 4 offset;
  check_int "incidence edges = total size" 6 (Ugraph.m g);
  check "chain connected" true (Hypergraph.is_connected chain);
  let disconnected = h_of ~n:4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  check "disconnected detected" false (Hypergraph.is_connected disconnected)

(* ------------------------------------------------------------- GYO *)

let test_gyo () =
  check "chain alpha-acyclic" true (Gyo.alpha_acyclic chain);
  check "triangle not alpha-acyclic" false (Gyo.alpha_acyclic triangle);
  check "covered triangle is alpha-acyclic" true
    (Gyo.alpha_acyclic triangle_covered)

let test_gyo_join_tree () =
  match Gyo.join_tree chain with
  | Some jt ->
    check "coherent" true (Join_tree.verify jt);
    check "preorder has RIP" true
      (Join_tree.rip_holds chain (Join_tree.preorder jt))
  | None -> Alcotest.fail "chain has a join tree"

(* ------------------------------------------------------------- MCS *)

let test_mcs () =
  check "MCS agrees: chain" true (Mcs.alpha_acyclic chain);
  check "MCS agrees: triangle" false (Mcs.alpha_acyclic triangle);
  check "MCS agrees: covered triangle" true (Mcs.alpha_acyclic triangle_covered);
  match Mcs.rip_ordering triangle_covered with
  | Some order -> check "RIP ordering verifies" true (Join_tree.rip_holds triangle_covered order)
  | None -> Alcotest.fail "expected a RIP ordering"

(* ----------------------------------------------------------- Berge *)

let test_berge () =
  check "chain Berge-acyclic" true (Berge.acyclic chain);
  check "triangle not Berge" false (Berge.acyclic triangle);
  let two_shared = h_of ~n:3 [ [ 0; 1 ]; [ 0; 1; 2 ] ] in
  check "two edges sharing two nodes form a Berge cycle" false
    (Berge.acyclic two_shared);
  (match Berge.find_berge_cycle two_shared with
  | Some (es, ns) ->
    check_int "q = 2 edges" 2 (List.length es);
    check_int "2 thread nodes" 2 (List.length ns)
  | None -> Alcotest.fail "expected a Berge cycle witness");
  check "no witness on chain" true (Berge.find_berge_cycle chain = None)

(* ------------------------------------------------------------ Beta *)

let test_beta () =
  check "chain beta" true (Beta.acyclic chain);
  check "covered triangle is NOT beta (the triangle is a beta-cycle)" false
    (Beta.acyclic triangle_covered);
  check "flower is beta" true (Beta.acyclic flower);
  (match Beta.elimination_order chain with
  | Some order -> check_int "eliminates all nodes" 4 (List.length order)
  | None -> Alcotest.fail "chain should eliminate");
  match Beta.find_beta_cycle triangle_covered with
  | Some (es, pures) ->
    check_int "beta-cycle of length 3" 3 (List.length es);
    check "pure sets nonempty" true
      (List.for_all (fun s -> not (Iset.is_empty s)) pures)
  | None -> Alcotest.fail "triangle is a beta cycle"

let test_nest_points () =
  check "leaf node of chain is a nest point" true (Beta.is_nest_point chain 0);
  check "triangle has no nest points" true
    (List.for_all (fun v -> not (Beta.is_nest_point triangle v)) [ 0; 1; 2 ])

(* ----------------------------------------------------------- Gamma *)

let test_gamma () =
  check "chain gamma" true (Gamma.acyclic chain);
  check "flower is beta but NOT gamma" false (Gamma.acyclic flower);
  check "flower special 3-cycle found" true (Gamma.special_3_cycle flower <> None);
  (* Two edges sharing two nodes: gamma-acyclic (no 3 edges), though
     not Berge-acyclic. *)
  let two_shared = h_of ~n:3 [ [ 0; 1 ]; [ 0; 1; 2 ] ] in
  check "two-edge overlap is gamma-acyclic" true (Gamma.acyclic two_shared)

(* ------------------------------------------------------- Conformal *)

let test_conformal () =
  check "triangle is NOT conformal (K3 in no edge)" false
    (Conformal.is_conformal triangle);
  check "covered triangle is conformal" true
    (Conformal.is_conformal triangle_covered);
  check "brute agrees on triangle" false (Conformal.is_conformal_brute triangle);
  check "brute agrees on covered" true
    (Conformal.is_conformal_brute triangle_covered);
  check "violation witness on triangle" true
    (Conformal.gilmore_violation triangle <> None)

(* -------------------------------------------------------- Acyclicity *)

let test_degrees () =
  check "chain is Berge degree" true
    (Acyclicity.degree chain = Acyclicity.Berge_acyclic);
  check "flower is Beta degree" true
    (Acyclicity.degree flower = Acyclicity.Beta_acyclic);
  check "covered triangle is Alpha degree" true
    (Acyclicity.degree triangle_covered = Acyclicity.Alpha_acyclic);
  check "triangle is Cyclic" true (Acyclicity.degree triangle = Acyclicity.Cyclic);
  let two_shared = h_of ~n:3 [ [ 0; 1 ]; [ 0; 1; 2 ] ] in
  check "two-edge overlap is Gamma degree" true
    (Acyclicity.degree two_shared = Acyclicity.Gamma_acyclic)

let test_witnesses () =
  (match Acyclicity.why_not triangle Acyclicity.Alpha_acyclic with
  | Some (Acyclicity.Gyo_stuck es) -> check_int "all three edges stuck" 3 (List.length es)
  | _ -> Alcotest.fail "triangle must have an alpha witness");
  (match Acyclicity.why_not flower Acyclicity.Gamma_acyclic with
  | Some (Acyclicity.Gamma_3_cycle _) -> check "gamma witness on flower" true true
  | _ -> Alcotest.fail "flower must have a gamma witness");
  (match Acyclicity.why_not triangle_covered Acyclicity.Beta_acyclic with
  | Some (Acyclicity.Beta_cycle es) -> check_int "beta cycle length 3" 3 (List.length es)
  | _ -> Alcotest.fail "covered triangle must have a beta witness");
  (match Acyclicity.why_not triangle_covered Acyclicity.Berge_acyclic with
  | Some (Acyclicity.Berge_cycle _) -> check "Berge witness" true true
  | _ -> Alcotest.fail "expected a Berge witness");
  check "no witness when the degree holds" true
    (Acyclicity.why_not chain Acyclicity.Berge_acyclic = None);
  check "witness printer says something" true
    (String.length
       (Format.asprintf "%a" Acyclicity.pp_witness
          (Acyclicity.Gamma_3_cycle (0, 1, 2)))
    > 0)

(* ----------------------------------------------------- Decomposition *)

let test_decomposition_basics () =
  let open Graphs in
  let path = Ugraph.of_edges ~n:5 (List.init 4 (fun i -> (i, i + 1))) in
  let d = Decomposition.min_fill path in
  check "path decomposition verifies" true (Decomposition.verify path d);
  check_int "path width 1" 1 (Decomposition.width d);
  let c5 = Workloads.Gen_graph.cycle 5 in
  let dc = Decomposition.min_fill c5 in
  check "cycle decomposition verifies" true (Decomposition.verify c5 dc);
  check_int "cycle width 2" 2 (Decomposition.width dc);
  let k4 =
    Ugraph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
  in
  check_int "K4 width 3" 3 (Decomposition.width (Decomposition.min_fill k4))

let test_decomposition_hypergraph () =
  check_int "chain hypergraph width = max edge - 1" 1
    (Decomposition.width (Decomposition.of_hypergraph chain));
  check_int "covered triangle width 2" 2
    (Decomposition.width (Decomposition.of_hypergraph triangle_covered))

(* -------------------------------------------------------- properties *)

let gen_random_h =
  QCheck2.Gen.(
    tup3 (int_range 2 7) (int_range 1 6) (int_range 0 10000)
    |> map (fun (n, k, seed) ->
           let rng = Workloads.Rng.make ~seed in
           Workloads.Gen_hyper.random rng ~n_nodes:n ~n_edges:k ~max_size:4))

let qcheck_cases =
  [
    QCheck2.Test.make ~count:300 ~name:"GYO = MCS alpha test" gen_random_h
      (fun h -> Gyo.alpha_acyclic h = Mcs.alpha_acyclic h);
    QCheck2.Test.make ~count:300
      ~name:"GYO = Definition 7 (chordal 2-section + conformal)"
      gen_random_h (fun h ->
        Gyo.alpha_acyclic h = Acyclicity.alpha_acyclic_by_definition h);
    QCheck2.Test.make ~count:300
      ~name:"nest-point beta = explicit beta-cycle search" gen_random_h
      (fun h -> Beta.acyclic h = (Beta.find_beta_cycle h = None));
    QCheck2.Test.make ~count:300
      ~name:"incidence-forest Berge = explicit Berge-cycle search"
      gen_random_h (fun h -> Berge.acyclic h = (Berge.find_berge_cycle h = None));
    QCheck2.Test.make ~count:300 ~name:"Gilmore conformality = clique oracle"
      gen_random_h (fun h ->
        Conformal.is_conformal h = Conformal.is_conformal_brute h);
    QCheck2.Test.make ~count:300
      ~name:"hierarchy Berge => gamma => beta => alpha" gen_random_h (fun h ->
        Acyclicity.hierarchy_consistent (Acyclicity.report h));
    QCheck2.Test.make ~count:200 ~name:"join tree coherent when GYO succeeds"
      gen_random_h (fun h ->
        match Gyo.join_tree h with
        | None -> true
        | Some jt ->
          Join_tree.verify jt
          && Join_tree.rip_holds h (Join_tree.preorder jt));
    QCheck2.Test.make ~count:200
      ~name:"Corollary 1: Berge/gamma/beta acyclicity are self-dual"
      gen_random_h (fun h ->
        let d = Hypergraph.dual h in
        Berge.acyclic h = Berge.acyclic d
        && Gamma.acyclic h = Gamma.acyclic d
        && Beta.acyclic h = Beta.acyclic d);
    QCheck2.Test.make ~count:200 ~name:"generated alpha instances are alpha"
      QCheck2.Gen.(int_range 0 5000)
      (fun seed ->
        let rng = Workloads.Rng.make ~seed in
        let h = Workloads.Gen_hyper.alpha_acyclic rng ~n_edges:6 ~max_size:4 in
        Gyo.alpha_acyclic h);
    QCheck2.Test.make ~count:200 ~name:"generated gamma instances are gamma"
      QCheck2.Gen.(int_range 0 5000)
      (fun seed ->
        let rng = Workloads.Rng.make ~seed in
        let h = Workloads.Gen_hyper.gamma_acyclic rng ~n_edges:6 ~max_size:4 in
        Gamma.acyclic h);
    QCheck2.Test.make ~count:200 ~name:"generated Berge instances are Berge"
      QCheck2.Gen.(int_range 0 5000)
      (fun seed ->
        let rng = Workloads.Rng.make ~seed in
        let h = Workloads.Gen_hyper.berge_acyclic rng ~n_edges:6 ~max_size:4 in
        Berge.acyclic h);
    QCheck2.Test.make ~count:150 ~name:"restrict yields a subhypergraph"
      gen_random_h (fun h ->
        let keep =
          Iset.filter (fun v -> v mod 2 = 0) (Iset.range (Hypergraph.n_nodes h))
        in
        let r = Hypergraph.restrict h keep in
        Array.for_all
          (fun e -> Iset.subset e keep)
          (Hypergraph.edges r));
    QCheck2.Test.make ~count:250
      ~name:"Corollary 1 consequence: beta-acyclic => guarded node ordering"
      gen_random_h (fun h ->
        QCheck2.assume (Beta.acyclic h);
        match Beta.guarded_node_ordering h with
        | Some order -> Beta.is_guarded_node_ordering h order
        | None -> false);
    QCheck2.Test.make ~count:250
      ~name:"guarded ordering checker rejects bad permutations" gen_random_h
      (fun h ->
        (* The reversed guarded ordering is usually not guarded; at
           minimum the checker must reject orderings over the wrong
           node set. *)
        Beta.is_guarded_node_ordering h [] = Graphs.Iset.is_empty (Hypergraph.covered_nodes h));
    QCheck2.Test.make ~count:200
      ~name:"why_not witness present exactly when the degree is missed"
      gen_random_h (fun h ->
        let cases =
          [
            (Acyclicity.Berge_acyclic, Berge.acyclic h);
            (Acyclicity.Gamma_acyclic, Gamma.acyclic h);
            (Acyclicity.Beta_acyclic, Beta.acyclic h);
            (Acyclicity.Alpha_acyclic, Gyo.alpha_acyclic h);
          ]
        in
        List.for_all
          (fun (goal, holds) ->
            match Acyclicity.why_not h goal with
            | Some _ -> not holds
            | None -> holds)
          cases);
    QCheck2.Test.make ~count:200
      ~name:"min-fill decomposition always verifies"
      QCheck2.Gen.(tup2 (int_range 1 9) (int_range 0 5000))
      (fun (n, seed) ->
        let rng = Workloads.Rng.make ~seed in
        let g = Workloads.Gen_graph.gnp rng ~n ~p:0.4 in
        Decomposition.verify g (Decomposition.min_fill g));
    QCheck2.Test.make ~count:150
      ~name:"min-fill is exact on chordal graphs (width = clique - 1)"
      QCheck2.Gen.(int_range 0 3000)
      (fun seed ->
        let rng = Workloads.Rng.make ~seed in
        let g = Workloads.Gen_graph.random_chordal rng ~n:12 ~max_clique:4 in
        Decomposition.treewidth_upper g
        = Graphs.Cliques.max_clique_size g - 1);
    QCheck2.Test.make ~count:150
      ~name:"alpha-acyclic hypergraphs have width = max edge size - 1"
      QCheck2.Gen.(int_range 0 3000)
      (fun seed ->
        let rng = Workloads.Rng.make ~seed in
        let h = Workloads.Gen_hyper.alpha_acyclic rng ~n_edges:6 ~max_size:4 in
        let max_edge =
          Array.fold_left
            (fun acc e -> max acc (Graphs.Iset.cardinal e))
            0 (Hypergraph.edges h)
        in
        Decomposition.width (Decomposition.of_hypergraph h) = max_edge - 1);
    QCheck2.Test.make ~count:150
      ~name:"beta-acyclicity is hereditary under restriction" gen_random_h
      (fun h ->
        QCheck2.assume (Beta.acyclic h);
        let keep =
          Iset.filter (fun v -> v mod 2 = 0) (Iset.range (Hypergraph.n_nodes h))
        in
        Beta.acyclic (Hypergraph.restrict h keep));
  ]

let () =
  Alcotest.run "hypergraphs"
    [
      ( "structure",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "dual involution" `Quick test_dual_involution;
          Alcotest.test_case "two-section" `Quick test_two_section;
          Alcotest.test_case "restrict/reduce" `Quick test_restrict_and_reduce;
          Alcotest.test_case "incidence graph" `Quick test_incidence_graph;
        ] );
      ( "gyo",
        [
          Alcotest.test_case "alpha recognition" `Quick test_gyo;
          Alcotest.test_case "join tree" `Quick test_gyo_join_tree;
        ] );
      ("mcs", [ Alcotest.test_case "alpha + RIP" `Quick test_mcs ]);
      ("berge", [ Alcotest.test_case "recognition" `Quick test_berge ]);
      ( "beta",
        [
          Alcotest.test_case "recognition" `Quick test_beta;
          Alcotest.test_case "nest points" `Quick test_nest_points;
        ] );
      ("gamma", [ Alcotest.test_case "recognition" `Quick test_gamma ]);
      ("conformal", [ Alcotest.test_case "recognition" `Quick test_conformal ]);
      ("degrees", [ Alcotest.test_case "classification" `Quick test_degrees ]);
      ("witnesses", [ Alcotest.test_case "why_not" `Quick test_witnesses ]);
      ( "decomposition",
        [
          Alcotest.test_case "basics" `Quick test_decomposition_basics;
          Alcotest.test_case "hypergraph width" `Quick
            test_decomposition_hypergraph;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
