(* Randomised checks of the paper's lemmas in both directions, plus
   end-to-end solver consistency. The per-statement forward checks
   live in test_bipartite / test_steiner; this file concentrates on
   the "if and only if" converses and the internal lemmas. *)

open Graphs
open Bipartite
open Steiner

let rng_of seed = Workloads.Rng.make ~seed

let small_bipartite_gen =
  QCheck2.Gen.(
    tup3 (int_range 2 4) (int_range 2 4) (int_range 0 100000)
    |> map (fun (nl, nr, seed) ->
           let rng = rng_of seed in
           Workloads.Gen_bipartite.gnp rng ~nl ~nr ~p:0.55))

(* Lemma 4 forward: on (6,2)-chordal graphs every nonredundant path is
   minimum. Converse: a non-(6,2) graph always has a nonredundant
   non-minimum path. Together: equivalence. *)
let lemma4 =
  QCheck2.Test.make ~count:250
    ~name:"Lemma 4 (iff): (6,2)-chordal = all nonredundant paths minimum"
    small_bipartite_gen (fun g ->
      let u = Bigraph.ugraph g in
      Mn_chordality.is_62_chordal g
      = (Cover.nonredundant_nonminimum_pair u = None))

(* Lemma 5 converse: on a non-(6,2)-chordal graph some terminal pair has
   nonredundant covers of different sizes. (The forward direction is a
   property test in test_steiner.) *)
let lemma5_converse =
  QCheck2.Test.make ~count:100
    ~name:"Lemma 5 converse: non-(6,2) graphs have non-minimum nonredundant covers"
    small_bipartite_gen (fun g ->
      QCheck2.assume (not (Mn_chordality.is_62_chordal g));
      let u = Bigraph.ugraph g in
      let nodes = Iset.elements (Ugraph.nodes u) in
      let pairs =
        List.concat_map
          (fun a -> List.filter_map (fun b -> if a < b then Some (a, b) else None) nodes)
          nodes
      in
      List.exists
        (fun (a, b) ->
          let p = Iset.of_list [ a; b ] in
          match Traverse.component_containing u p with
          | None -> false
          | Some comp ->
            let sizes =
              List.map Iset.cardinal
                (Cover.nonredundant_covers_brute u ~within:comp ~p)
            in
            (match sizes with
            | [] -> false
            | s :: rest -> List.exists (fun x -> x <> s) rest))
        pairs)

(* Lemma 1: the ordering computed inside Algorithm 1 satisfies both
   stated properties on generated alpha-acyclic instances. *)
let lemma1 =
  QCheck2.Test.make ~count:150
    ~name:"Lemma 1: Algorithm 1's W ordering has the suffix properties"
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let rng = rng_of seed in
      let g = Workloads.Gen_bipartite.alpha_bipartite rng ~n_right:5 ~max_size:3 in
      let u = Bigraph.ugraph g in
      let p = Workloads.Gen_bipartite.random_terminals rng g ~k:2 in
      QCheck2.assume (Iset.cardinal p = 2);
      match Algorithm1.solve g ~p with
      | Error _ -> QCheck2.assume_fail ()
      | Ok r ->
        let w = Array.of_list r.Algorithm1.elimination_order in
        let q = Array.length w in
        let suffix i =
          Iset.of_list (Array.to_list (Array.sub w i (q - i)))
        in
        let adj_set s =
          Iset.fold (fun v acc -> Iset.union (Ugraph.neighbors u v) acc) s Iset.empty
        in
        let prop1 =
          (* induced subgraph on suffix ∪ Adj(suffix) is connected *)
          List.for_all
            (fun i ->
              let s = suffix i in
              Traverse.is_connected ~within:(Iset.union s (adj_set s)) u)
            (List.init q (fun i -> i))
        in
        let prop2 =
          List.for_all
            (fun i ->
              if i = q - 1 then true
              else
                let vi = w.(i) in
                let inter =
                  Iset.inter (Ugraph.neighbors u vi) (adj_set (suffix (i + 1)))
                in
                Iset.is_empty inter
                || List.exists
                     (fun j -> Iset.subset inter (Ugraph.neighbors u w.(j)))
                     (List.init (q - i - 1) (fun d -> i + 1 + d)))
            (List.init q (fun i -> i))
        in
        prop1 && prop2)

(* Lemma 2 on generated V2-chordal V2-conformal instances: every cycle
   of length >= 6 and every pair of left nodes at cycle distance 2 has
   a right node adjacent to both and to a third cycle node. *)
let lemma2 =
  QCheck2.Test.make ~count:100
    ~name:"Lemma 2: distance-2 pairs on long cycles share an anchored witness"
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let rng = rng_of seed in
      let g = Workloads.Gen_bipartite.alpha_bipartite rng ~n_right:4 ~max_size:3 in
      let u = Bigraph.ugraph g in
      let left = Bigraph.left_nodes g in
      let right = Bigraph.right_nodes g in
      let ok = ref true in
      Cycles.iter_simple_cycles ~min_len:6 u (fun cyc ->
          if !ok then begin
            let arr = Array.of_list cyc in
            let k = Array.length arr in
            let cycle_set = Iset.of_list cyc in
            for i = 0 to k - 1 do
              let v1 = arr.(i) and v2 = arr.((i + 2) mod k) in
              if Iset.mem v1 left && Iset.mem v2 left then begin
                let witness w =
                  let nb = Ugraph.neighbors u w in
                  Iset.mem v1 nb && Iset.mem v2 nb
                  && not
                       (Iset.is_empty
                          (Iset.remove v1 (Iset.remove v2 (Iset.inter nb cycle_set))))
                in
                if not (Iset.exists witness right) then ok := false
              end
            done
          end);
      !ok)

(* Lemma 3 consequence used by the proof: in Algorithm 1's ordering, a
   right node adjacent to a chord-like witness cannot be followed by
   both cycle endpoints... exercised indirectly: the algorithm's result
   must stay V2-nonredundant. *)
let alg1_v2_nonredundant =
  QCheck2.Test.make ~count:150
    ~name:"Algorithm 1 result is a V2-nonredundant cover"
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let rng = rng_of seed in
      let g = Workloads.Gen_bipartite.alpha_bipartite rng ~n_right:5 ~max_size:3 in
      let u = Bigraph.ugraph g in
      let p = Workloads.Gen_bipartite.random_terminals rng g ~k:3 in
      QCheck2.assume (Iset.cardinal p >= 2);
      match Algorithm1.solve g ~p with
      | Error _ -> QCheck2.assume_fail ()
      | Ok r ->
        Cover.is_side_nonredundant_cover u ~p ~side:(Bigraph.right_nodes g)
          r.Algorithm1.tree.Tree.nodes)

(* Algorithm 2 (fixpoint elimination) always returns a nonredundant
   cover, on every graph — the precondition only buys minimality. *)
let alg2_nonredundant =
  QCheck2.Test.make ~count:200
    ~name:"Algorithm 2 result is a nonredundant cover on any graph"
    small_bipartite_gen (fun g ->
      let u = Bigraph.ugraph g in
      let rng = rng_of (Ugraph.m u) in
      let p = Workloads.Gen_bipartite.random_terminals rng g ~k:2 in
      QCheck2.assume (Iset.cardinal p = 2);
      match Algorithm2.solve u ~p with
      | None -> true
      | Some t -> Cover.is_nonredundant_cover u ~p t.Tree.nodes)

(* End-to-end: whenever the facade claims optimality, the node count
   matches the exact DP. *)
let facade_consistency =
  QCheck2.Test.make ~count:120
    ~name:"facade optimal flag is honest (matches exact DP)"
    small_bipartite_gen (fun g ->
      let u = Bigraph.ugraph g in
      let rng = rng_of (Ugraph.m u + 17) in
      let p = Workloads.Gen_bipartite.random_terminals rng g ~k:3 in
      QCheck2.assume (Iset.cardinal p >= 2);
      match Minconn.solve_steiner g ~p with
      | None -> Traverse.component_containing u p = None
      | Some s ->
        (not s.Minconn.optimal)
        || Some (Steiner.Tree.node_count s.Minconn.tree)
           = Dreyfus_wagner.optimum_nodes u ~terminals:p)

(* Theorem 2 scaled up one notch: q = 3 with planted instances. *)
let theorem2_q3 =
  QCheck2.Test.make ~count:10
    ~name:"Theorem 2 equivalence at q = 3"
    QCheck2.Gen.(int_range 0 200)
    (fun seed ->
      let rng = rng_of seed in
      let solvable = Workloads.Rng.bool rng 0.5 in
      let inst =
        if solvable then Workloads.Gen_x3c.planted rng ~q:3 ~distractors:2
        else Workloads.Gen_x3c.unsolvable_pair rng ~q:3 ~distractors:3
      in
      let red = Reductions.theorem2 inst in
      Reductions.theorem2_gadget_ok red
      && X3c.solve inst <> None = Reductions.steiner_within_budget red)

(* Corollary 4: on (6,1)-chordal graphs the pseudo-Steiner problem
   w.r.t. V1 is polynomial — Algorithm 1 on the flipped graph, licensed
   by Corollary 2. Checked against the brute-force V1 minimum. *)
let corollary4 =
  QCheck2.Test.make ~count:100
    ~name:"Corollary 4: pseudo-Steiner w.r.t. V1 on (6,1)-chordal graphs"
    QCheck2.Gen.(tup2 (int_range 2 5) (int_range 0 5000))
    (fun (petals, seed) ->
      let rng = rng_of seed in
      let g =
        if Workloads.Rng.bool rng 0.5 then
          Workloads.Gen_bipartite.chordal_61_flower rng ~petals
        else Workloads.Gen_bipartite.chordal_62 rng ~n_right:4 ~max_size:3
      in
      QCheck2.assume (Mn_chordality.is_61_chordal g);
      let p = Workloads.Gen_bipartite.random_terminals rng g ~k:3 in
      QCheck2.assume (Iset.cardinal p >= 2);
      match (Algorithm1.solve_wrt_v1 g ~p, Brute.v1_minimum g ~p) with
      | Ok r, Some (_, best) ->
        r.Algorithm1.v2_count = best
        && Steiner.Tree.verify (Bigraph.ugraph g) ~terminals:p
             r.Algorithm1.tree
      | Error Algorithm1.Disconnected_terminals, None -> true
      | _ -> false)

(* Bridge to reference [16] (White-Farber-Pulleyblank): the class where
   the non-bipartite Steiner problem turns polynomial is the strongly
   chordal graphs, and it connects back to the paper's taxonomy through
   beta-acyclicity: G is strongly chordal exactly when its closed
   neighborhood hypergraph is beta-acyclic — i.e. when the bipartite
   vertex/closed-neighborhood incidence graph is (6,1)-chordal. *)
let strongly_chordal_bridge =
  QCheck2.Test.make ~count:250
    ~name:"[16] bridge: strongly chordal = beta-acyclic closed neighborhoods"
    QCheck2.Gen.(tup2 (int_range 3 8) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = rng_of seed in
      let g = Workloads.Gen_graph.gnp rng ~n ~p:0.4 in
      let nh =
        Hypergraphs.Hypergraph.create ~n_nodes:n
          (List.init n (fun v ->
               Graphs.Strongly_chordal.closed_neighborhood g
                 ~within:(Graphs.Ugraph.nodes g) v))
      in
      Graphs.Strongly_chordal.is_strongly_chordal g
      = Hypergraphs.Beta.acyclic nh)

let qcheck_cases =
  [
    lemma4;
    corollary4;
    lemma5_converse;
    lemma1;
    lemma2;
    alg1_v2_nonredundant;
    alg2_nonredundant;
    facade_consistency;
    theorem2_q3;
    strongly_chordal_bridge;
  ]

let () =
  Alcotest.run "theorems"
    [ ("lemmas-and-theorems", List.map QCheck_alcotest.to_alcotest qcheck_cases) ]
